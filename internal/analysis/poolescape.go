// The poolescape analyzer. PR 6's zero-alloc hot path works because
// rented objects — release scratch, pooled crypto sources, response
// buffers, solver jobs — go back to their pools on every path and never
// outlive the release that rented them. A missed return is a silent
// steady-state allocation regression (the pool drains and refills from
// the heap); an escaped scratch is worse: two releases sharing one
// buffer corrupt each other's answers. Hand review caught these while
// the code was young; once per-shard releases cross goroutines that
// stops scaling.
//
// Tracked rent/return pairs:
//
//	(*mm.Mechanism).GetScratch    →  (*mm.Mechanism).PutScratch
//	(*mm.Mechanism).StreamRelease →  (*mm.AnswerStream).Close
//	mm.AcquireCryptoSource        →  mm.ReleaseCryptoSource
//	server.getBuf                 →  server.putBuf
//	(*sync.Pool).Get              →  (*sync.Pool).Put
//
// A rented value must reach its return call on every path (deferred
// returns cover panics) and must not be stored into a field or element,
// captured by a goroutine, or — for the named pairs — returned to the
// caller. Raw (*sync.Pool).Get is allowed to escape by return: that is
// the wrapper idiom the named pairs themselves are built from. Intended
// ownership transfers (the server's releaseOut carries a scratch to the
// response encoder) carry a //lint:allow with the reason.

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

const (
	mmPkg     = "adaptivemm/internal/mm"
	serverPkg = "adaptivemm/internal/server"
)

// PoolEscape requires rented pool values to be returned on every path and
// to never escape their release.
var PoolEscape = &Analyzer{
	Name: "poolescape",
	Doc: "pool-rented values (release scratch, crypto sources, response buffers, sync.Pool objects) " +
		"must be returned on every path and must not be stored, goroutine-captured, or returned to callers",
	Run: runPoolEscape,
}

// rentSpec describes one acquisition's matching release.
type rentSpec struct {
	// what names the rented thing in diagnostics.
	what string
	// settles reports whether the call releases the tracked object.
	settles func(pass *Pass, call *ast.CallExpr, obj types.Object) bool
	// returnOK permits escape-by-return (the sync.Pool wrapper idiom).
	returnOK bool
}

// rentSpecFor recognizes an acquisition call and returns its spec.
func rentSpecFor(pass *Pass, call *ast.CallExpr) (rentSpec, bool) {
	obj := calleeObj(pass.TypesInfo, call)
	if obj == nil {
		return rentSpec{}, false
	}
	switch {
	case isMethodOn(obj, mmPkg, "Mechanism", "GetScratch"):
		return rentSpec{
			what: "release scratch from GetScratch",
			settles: func(pass *Pass, c *ast.CallExpr, o types.Object) bool {
				return releasesVia(pass, c, o, func(callee types.Object) bool {
					return isMethodOn(callee, mmPkg, "Mechanism", "PutScratch")
				})
			},
		}, true
	case isMethodOn(obj, mmPkg, "Mechanism", "StreamRelease"):
		// StreamRelease hands the caller an AnswerStream that owns a
		// pooled release scratch; Close is its put. Unlike the other
		// pairs the release is a method on the rented value itself, so
		// the receiver — not an argument — must be the tracked object.
		return rentSpec{
			what: "answer stream from StreamRelease (owns a pooled release scratch)",
			settles: func(pass *Pass, c *ast.CallExpr, o types.Object) bool {
				return closesVia(pass, c, o, func(callee types.Object) bool {
					return isMethodOn(callee, mmPkg, "AnswerStream", "Close")
				})
			},
		}, true
	case isPkgFunc(obj, mmPkg, "AcquireCryptoSource"):
		return rentSpec{
			what: "pooled crypto source from AcquireCryptoSource",
			settles: func(pass *Pass, c *ast.CallExpr, o types.Object) bool {
				return releasesVia(pass, c, o, func(callee types.Object) bool {
					return isPkgFunc(callee, mmPkg, "ReleaseCryptoSource")
				})
			},
		}, true
	case isPkgFunc(obj, serverPkg, "getBuf"):
		return rentSpec{
			what: "pooled response buffer from getBuf",
			settles: func(pass *Pass, c *ast.CallExpr, o types.Object) bool {
				return releasesVia(pass, c, o, func(callee types.Object) bool {
					return isPkgFunc(callee, serverPkg, "putBuf")
				})
			},
		}, true
	case isMethodOn(obj, "sync", "Pool", "Get"):
		return rentSpec{
			what:     "sync.Pool value from Get",
			returnOK: true, // the wrapper idiom: GetScratch/getBuf return what they rent
			settles: func(pass *Pass, c *ast.CallExpr, o types.Object) bool {
				return releasesVia(pass, c, o, func(callee types.Object) bool {
					return isMethodOn(callee, "sync", "Pool", "Put")
				})
			},
		}, true
	}
	return rentSpec{}, false
}

// closesVia reports whether call is a matching release invoked as a
// method on the tracked object itself (st.Close() settles st).
func closesVia(pass *Pass, call *ast.CallExpr, obj types.Object, isReleaser func(types.Object) bool) bool {
	callee := calleeObj(pass.TypesInfo, call)
	if callee == nil || !isReleaser(callee) {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	return ok && refersTo(pass.TypesInfo, sel.X, obj)
}

// releasesVia reports whether call is a matching release with the tracked
// object among its arguments.
func releasesVia(pass *Pass, call *ast.CallExpr, obj types.Object, isReleaser func(types.Object) bool) bool {
	callee := calleeObj(pass.TypesInfo, call)
	if callee == nil || !isReleaser(callee) {
		return false
	}
	for _, arg := range call.Args {
		if refersTo(pass.TypesInfo, arg, obj) {
			return true
		}
	}
	return false
}

func runPoolEscape(pass *Pass) error {
	for _, f := range pass.Files {
		for _, fn := range funcBodies(f) {
			checkRentsIn(pass, fn.body)
		}
	}
	return nil
}

// checkRentsIn finds pool acquisitions in one function body and
// flow-checks each.
func checkRentsIn(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 {
			return true
		}
		// The rent call may sit under a type assertion:
		// pool.Get().(*rowJob).
		rhs := ast.Unparen(assign.Rhs[0])
		if ta, ok := rhs.(*ast.TypeAssertExpr); ok {
			if len(assign.Lhs) == 2 {
				// Comma-ok assert: on the !ok path nothing was rented (the
				// pool was empty), so neither outcome is trackable here. This
				// is the wrapper fallback idiom:
				//   if sc, ok := pool.Get().(*T); ok { return sc }
				//   return &T{}
				return true
			}
			rhs = ast.Unparen(ta.X)
		}
		call, ok := rhs.(*ast.CallExpr)
		if !ok {
			return true
		}
		spec, ok := rentSpecFor(pass, call)
		if !ok {
			return true
		}
		if len(assign.Lhs) == 0 {
			return true
		}
		ident, ok := ast.Unparen(assign.Lhs[0]).(*ast.Ident)
		if !ok || ident.Name == "_" {
			return true // comma-ok Get or discarded: nothing trackable
		}
		obj := pass.TypesInfo.Defs[ident]
		if obj == nil {
			obj = pass.TypesInfo.Uses[ident]
		}
		if obj == nil {
			return true
		}
		// The companion error of `st, err := m.StreamRelease(...)`: in a
		// branch guarded by err != nil nothing was rented.
		var errObj types.Object
		if len(assign.Lhs) == 2 {
			if errIdent, ok := ast.Unparen(assign.Lhs[1]).(*ast.Ident); ok && errIdent.Name != "_" {
				errObj = pass.TypesInfo.Defs[errIdent]
				if errObj == nil {
					errObj = pass.TypesInfo.Uses[errIdent]
				}
			}
		}
		checkFlow(pass.TypesInfo, body, assign, obj, flowHooks{
			companionErr: errObj,
			settles: func(call *ast.CallExpr) bool {
				return spec.settles(pass, call, obj)
			},
			onReturn: func(ret *ast.ReturnStmt, refs bool) bool {
				if !refs {
					pass.Reportf(ret.Pos(),
						"%s (line %d) is not returned to its pool before this return",
						spec.what, pass.Fset.Position(assign.Pos()).Line)
					return false
				}
				if spec.returnOK {
					return true
				}
				pass.Reportf(ret.Pos(),
					"%s escapes: returned to the caller; the value is only valid until its pool reuses it",
					spec.what)
				return false
			},
			// Escapes are reported once and then treated as settled so one
			// bad rent does not cascade into a report at every later
			// statement.
			onGo: func(g *ast.GoStmt) bool {
				pass.Reportf(g.Pos(),
					"%s is captured by a goroutine: the goroutine may outlive the release that rented it",
					spec.what)
				return true
			},
			onStore: func(a *ast.AssignStmt) bool {
				pass.Reportf(a.Pos(),
					"%s is stored outside the function: pooled values must not outlive their release",
					spec.what)
				return true
			},
			report: func(pos token.Pos, where string) {
				pass.Reportf(pos,
					"%s is not returned to its pool on all paths (unsettled at %s); prefer a deferred put",
					spec.what, where)
			},
		})
		return true
	})
}
