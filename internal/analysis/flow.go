// Shared control-flow walk for the ownership analyzers (budgetsettle,
// poolescape): a value is acquired by one statement and must be settled
// (committed/refunded, returned to its pool) on every path from there to
// the end of the enclosing function.
//
// The walk is an AST-level abstract interpretation of one function body
// with a three-bit state — (active, settled, terminated) — merged across
// branches: an if settles only when every non-terminating branch settles,
// a loop body may run zero times so it never settles the state for the
// code after it (but a value acquired *inside* the body must be settled
// by the body's end — the next iteration re-acquires), and a defer that
// settles covers every later path including panics, which is why it is
// the preferred spelling. goto is not handled (the codebase has none);
// break/continue conservatively end the analyzed path without a report.

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// flowHooks parameterizes the walk per analyzer.
type flowHooks struct {
	// settles reports whether the call settles the tracked object.
	settles func(call *ast.CallExpr) bool
	// onReturn is invoked for a return statement reached while the object
	// is unsettled; ret reports whether the return's operands reference
	// the object. It returns true when the path counts as settled
	// (ownership transferred) and false when it was reported as a leak.
	onReturn func(ret *ast.ReturnStmt, refs bool) bool
	// onGo is invoked when a go statement captures the object; returns
	// true when the path counts as settled afterwards.
	onGo func(g *ast.GoStmt) bool
	// onStore is invoked when the object is assigned into a non-local
	// location (field, index, dereference); returns true when the path
	// counts as settled afterwards.
	onStore func(assign *ast.AssignStmt) bool
	// onArgPass, when non-nil, is invoked for calls that receive the
	// object as an argument without settling it; returns true when that
	// transfers ownership (path settled).
	onArgPass func(call *ast.CallExpr) bool
	// report reports an unsettled leak at pos with a path description.
	report func(pos token.Pos, where string)
	// companionErr, when non-nil, is the error result bound alongside the
	// tracked value (st, err := ...). A branch guarded by `err != nil` is
	// walked with nothing rented: on the error path the acquisition
	// returned nil and there is nothing to settle.
	companionErr types.Object
}

type flowState struct {
	active     bool // the tracked value exists on this path
	settled    bool // it has been settled (or ownership transferred)
	terminated bool // the path ended (return, break, continue)
}

type flowChecker struct {
	info  *types.Info
	obj   types.Object
	acq   ast.Stmt
	hooks flowHooks
}

// checkFlow walks body for the object acquired by acq and reports every
// path on which it stays unsettled.
func checkFlow(info *types.Info, body *ast.BlockStmt, acq ast.Stmt, obj types.Object, hooks flowHooks) {
	fc := &flowChecker{info: info, obj: obj, acq: acq, hooks: hooks}
	st := fc.stmts(body.List, flowState{})
	if st.active && !st.settled && !st.terminated {
		hooks.report(acq.Pos(), "function end")
	}
}

func (fc *flowChecker) stmts(list []ast.Stmt, st flowState) flowState {
	for _, s := range list {
		st = fc.stmt(s, st)
		if st.terminated {
			break
		}
	}
	return st
}

func (fc *flowChecker) stmt(s ast.Stmt, st flowState) flowState {
	switch s := s.(type) {
	case *ast.AssignStmt:
		if s == fc.acq {
			// (Re-)acquisition: a fresh value is rented, whatever settled
			// state earlier merges left behind (an early-return if before the
			// acquisition merges to settled=true with nothing active).
			return flowState{active: true}
		}
		if fc.tracking(st) {
			if fc.settlesAny(s.Rhs) {
				st.settled = true
				return st
			}
			if fc.storesObj(s) && fc.hooks.onStore(s) {
				st.settled = true
				return st
			}
			st = fc.checkCallsIn(s, st)
		}
	case *ast.DeclStmt:
		if s == fc.acq {
			return flowState{active: true}
		}
	case *ast.ExprStmt:
		if fc.tracking(st) {
			if fc.settlesExpr(s.X) {
				st.settled = true
				return st
			}
			st = fc.checkCallsIn(s, st)
		}
	case *ast.DeferStmt:
		if fc.tracking(st) && fc.deferSettles(s) {
			st.settled = true
		}
	case *ast.ReturnStmt:
		if fc.tracking(st) {
			if fc.hooks.onReturn(s, refersTo(fc.info, s, fc.obj)) {
				st.settled = true
			}
		}
		st.terminated = true
	case *ast.GoStmt:
		if fc.tracking(st) && refersTo(fc.info, s.Call, fc.obj) {
			if fc.hooks.onGo(s) {
				st.settled = true
			}
		}
	case *ast.BlockStmt:
		st = fc.stmts(s.List, st)
	case *ast.IfStmt:
		if s.Init != nil {
			st = fc.stmt(s.Init, st)
		}
		thenIn := st
		if fc.errNotNilGuard(s.Cond) {
			thenIn.active = false
		}
		then := fc.stmts(s.Body.List, thenIn)
		els := st
		if s.Else != nil {
			els = fc.stmt(s.Else, st)
		}
		st = mergeBranches(st, []flowState{then, els})
	case *ast.ForStmt:
		if s.Init != nil {
			st = fc.stmt(s.Init, st)
		}
		st = fc.loopBody(s.Body, st)
	case *ast.RangeStmt:
		st = fc.loopBody(s.Body, st)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		st = fc.switchLike(s, st)
	case *ast.LabeledStmt:
		st = fc.stmt(s.Stmt, st)
	case *ast.BranchStmt:
		// break/continue/goto: the path leaves this block. Conservatively
		// end it without a report — settlement may follow the loop.
		st.terminated = true
	}
	return st
}

func (fc *flowChecker) tracking(st flowState) bool { return st.active && !st.settled }

// errNotNilGuard reports whether cond is `companionErr != nil`: inside
// that branch the acquisition failed and returned no value to settle.
func (fc *flowChecker) errNotNilGuard(cond ast.Expr) bool {
	if fc.hooks.companionErr == nil {
		return false
	}
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || be.Op != token.NEQ {
		return false
	}
	x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
	if isNilIdent(x) {
		x, y = y, x
	}
	if !isNilIdent(y) {
		return false
	}
	id, ok := x.(*ast.Ident)
	return ok && fc.info.Uses[id] == fc.hooks.companionErr
}

// isNilIdent reports whether e is the predeclared nil.
func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// loopBody walks a loop body. The loop may run zero times, so it never
// settles the surrounding state; a value acquired inside the body must be
// settled by the body's end, because the next iteration re-acquires.
func (fc *flowChecker) loopBody(body *ast.BlockStmt, st flowState) flowState {
	in := fc.stmts(body.List, st)
	if in.active && !st.active && !in.settled && !in.terminated {
		fc.hooks.report(fc.acq.Pos(), "end of loop body")
	}
	return st
}

// switchLike merges switch/type-switch/select clauses: the state after is
// settled only when every non-terminating clause settles and (for
// switches) a default clause exists — without one there is a fall-through
// path that never entered any case.
func (fc *flowChecker) switchLike(s ast.Stmt, st flowState) flowState {
	var body *ast.BlockStmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			st = fc.stmt(s.Init, st)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			st = fc.stmt(s.Init, st)
		}
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
		hasDefault = true // select blocks until some clause runs
	}
	var branches []flowState
	for _, c := range body.List {
		switch c := c.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			branches = append(branches, fc.stmts(c.Body, st))
		case *ast.CommClause:
			branches = append(branches, fc.stmts(c.Body, st))
		}
	}
	if !hasDefault {
		branches = append(branches, st) // the no-case-matched path
	}
	return mergeBranches(st, branches)
}

// mergeBranches joins the states of sibling control-flow branches: the
// merged path is settled when every non-terminating branch either never
// acquired the value or settled it (terminating branches reported their
// own leaks during their walk).
func mergeBranches(in flowState, branches []flowState) flowState {
	if len(branches) == 0 {
		return in
	}
	out := flowState{settled: true, terminated: true}
	for _, b := range branches {
		out.active = out.active || b.active
		if !b.terminated {
			out.terminated = false
			if b.active && !b.settled {
				out.settled = false
			}
		}
	}
	if !out.active {
		// settled is only meaningful alongside active; never leave a stale
		// settled=true that would mask a later acquisition.
		out.settled = false
	}
	return out
}

// checkCallsIn lets the analyzer treat passing the object to a
// non-settling call as an ownership transfer (budgetsettle does,
// poolescape does not).
func (fc *flowChecker) checkCallsIn(n ast.Node, st flowState) flowState {
	if fc.hooks.onArgPass == nil {
		return st
	}
	settled := st
	ast.Inspect(n, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || settled.settled {
			return true
		}
		for _, arg := range call.Args {
			if refersTo(fc.info, arg, fc.obj) && fc.hooks.onArgPass(call) {
				settled.settled = true
				return false
			}
		}
		return true
	})
	return settled
}

// settlesAny reports whether any expression settles the object.
func (fc *flowChecker) settlesAny(exprs []ast.Expr) bool {
	for _, e := range exprs {
		if fc.settlesExpr(e) {
			return true
		}
	}
	return false
}

// settlesExpr reports whether a settling call appears anywhere inside e.
func (fc *flowChecker) settlesExpr(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && fc.hooks.settles(call) {
			found = true
			return false
		}
		return true
	})
	return found
}

// deferSettles reports whether the deferred call settles the object —
// directly (defer res.Refund()) or inside a deferred function literal.
func (fc *flowChecker) deferSettles(d *ast.DeferStmt) bool {
	if fc.hooks.settles(d.Call) {
		return true
	}
	if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
		found := false
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && fc.hooks.settles(call) {
				found = true
				return false
			}
			return true
		})
		return found
	}
	return false
}

// storesObj reports whether the assignment writes the object into a
// non-local location: a field, an element, or through a pointer.
func (fc *flowChecker) storesObj(s *ast.AssignStmt) bool {
	rhsRefs := false
	for _, r := range s.Rhs {
		if refersTo(fc.info, r, fc.obj) {
			rhsRefs = true
		}
	}
	if !rhsRefs {
		return false
	}
	for _, l := range s.Lhs {
		switch ast.Unparen(l).(type) {
		case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
			// A write through the tracked value itself (*b = (*b)[:0],
			// sc.ans = ...) mutates the rented object; it does not move it
			// anywhere that outlives the function.
			if !refersTo(fc.info, l, fc.obj) {
				return true
			}
		}
	}
	return false
}

// --- small AST/type helpers shared by the analyzers ---

// exprString renders an expression canonically so syntactic identity can
// be compared across formatting differences.
func exprString(e ast.Expr) string { return types.ExprString(e) }

// refersTo reports whether any identifier under n resolves to obj.
func refersTo(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
			return false
		}
		return true
	})
	return found
}

// calleeObj resolves the called function or method of a call expression.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			return sel.Obj()
		}
		return info.Uses[fun.Sel]
	}
	return nil
}

// isMethodOn reports whether obj is a method with the given name whose
// receiver's type (after pointers) is named typeName in package pkgPath.
func isMethodOn(obj types.Object, pkgPath, typeName, name string) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != typeName {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Path() == pkgPath
}

// isPkgFunc reports whether obj is the package-level function
// pkgPath.name.
func isPkgFunc(obj types.Object, pkgPath, name string) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// enclosingFuncs pairs every function body in the file with its
// declaration for analyzers that walk per function.
type funcBody struct {
	name string
	body *ast.BlockStmt
}

// funcBodies returns every function and method body in the file
// (excluding function literals, which the flow walk sees inline).
func funcBodies(f *ast.File) []funcBody {
	var out []funcBody
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			out = append(out, funcBody{name: fd.Name.Name, body: fd.Body})
		}
	}
	return out
}
