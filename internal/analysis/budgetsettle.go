// The budgetsettle analyzer. The accountant's contract is
// check-reserve-commit: Reserve claims budget atomically, and exactly one
// of Commit or Refund must follow on *every* path — a reservation leaked
// on an error return (or a panic) permanently shrinks the dataset's
// available budget, refusing future releases that the cap actually
// admits. PR 2's and PR 3's review passes each caught one of these by
// hand; this analyzer turns the next one into a build failure.
//
// The check: for every call to accountant.Reserve whose result is bound
// to a variable, that variable must reach a Commit or Refund on every
// control-flow path of the enclosing function. A deferred settle (defer
// res.Refund(), or a deferred closure that settles) is the preferred
// spelling — it also covers panics. Transferring the reservation out of
// the function (returning it, storing it, passing it to another function)
// moves the obligation to the receiver and is accepted.

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// accountantPkg is the package whose Reserve/Commit/Refund the analyzer
// tracks.
const accountantPkg = "adaptivemm/internal/accountant"

// BudgetSettle requires every accountant.Reserve to be settled on all
// paths.
var BudgetSettle = &Analyzer{
	Name: "budgetsettle",
	Doc: "every accountant.Reserve must reach Commit or Refund on all control-flow paths " +
		"(prefer defer res.Refund(): it also covers panics); a leaked reservation permanently shrinks the budget",
	Run: runBudgetSettle,
}

func runBudgetSettle(pass *Pass) error {
	for _, f := range pass.Files {
		for _, fn := range funcBodies(f) {
			checkReservesIn(pass, fn.body)
		}
	}
	return nil
}

// checkReservesIn finds Reserve acquisitions in one function body and
// flow-checks each.
func checkReservesIn(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := calleeObj(pass.TypesInfo, call)
		if obj == nil || !isMethodOn(obj, accountantPkg, "Accountant", "Reserve") {
			return true
		}
		if len(assign.Lhs) == 0 {
			return true
		}
		resIdent, ok := ast.Unparen(assign.Lhs[0]).(*ast.Ident)
		if !ok {
			return true
		}
		if resIdent.Name == "_" {
			pass.Reportf(assign.Pos(),
				"accountant.Reserve result discarded: the reservation can never be committed or refunded; bind it and settle it")
			return true
		}
		resObj := pass.TypesInfo.Defs[resIdent]
		if resObj == nil {
			resObj = pass.TypesInfo.Uses[resIdent] // plain = assignment to an existing var
		}
		if resObj == nil {
			return true
		}
		// The companion error of `res, err := acct.Reserve(...)`: on the
		// error path res is nil and there is nothing to settle, so a return
		// that propagates (or wraps) err is not a leak.
		var errObj types.Object
		if len(assign.Lhs) == 2 {
			if errIdent, ok := ast.Unparen(assign.Lhs[1]).(*ast.Ident); ok && errIdent.Name != "_" {
				errObj = pass.TypesInfo.Defs[errIdent]
				if errObj == nil {
					errObj = pass.TypesInfo.Uses[errIdent]
				}
			}
		}
		checkFlow(pass.TypesInfo, body, assign, resObj, flowHooks{
			settles: func(call *ast.CallExpr) bool {
				return settlesReservation(pass, call, resObj)
			},
			// Returning, storing, goroutine hand-off or passing the
			// reservation to another function transfers the settle
			// obligation to the receiver.
			onReturn: func(ret *ast.ReturnStmt, refs bool) bool {
				if refs {
					return true
				}
				if errObj != nil && refersTo(pass.TypesInfo, ret, errObj) {
					// Propagating the Reserve error: res is nil here.
					return true
				}
				pass.Reportf(ret.Pos(),
					"reservation from accountant.Reserve (line %d) leaks on this return: Commit or Refund it first, or defer res.Refund() at the acquisition",
					pass.Fset.Position(assign.Pos()).Line)
				return false
			},
			onGo:      func(*ast.GoStmt) bool { return true },
			onStore:   func(*ast.AssignStmt) bool { return true },
			onArgPass: func(*ast.CallExpr) bool { return true },
			report: func(pos token.Pos, where string) {
				pass.Reportf(pos,
					"reservation from accountant.Reserve is not settled on all paths (unsettled at %s): call Commit or Refund, preferably via defer res.Refund()",
					where)
			},
		})
		return true
	})
}

// settlesReservation reports whether the call is resObj.Commit() or
// resObj.Refund().
func settlesReservation(pass *Pass, call *ast.CallExpr, resObj types.Object) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Commit" && sel.Sel.Name != "Refund") {
		return false
	}
	obj := calleeObj(pass.TypesInfo, call)
	if obj == nil || !isMethodOn(obj, accountantPkg, "Reservation", sel.Sel.Name) {
		return false
	}
	return refersTo(pass.TypesInfo, sel.X, resObj)
}
