// Fixture for floateq: forbidden exact float comparisons and every
// allowed idiom (exact-zero sentinel, NaN self-test, tolerance helper
// bodies, non-float operands).

package floatfixture

func compare(a, b float64) bool {
	if a == b { // want `floating-point == comparison`
		return true
	}
	return a != b // want `floating-point != comparison`
}

func allowedIdioms(a, b float64) bool {
	if a == 0 {
		return false
	}
	if a != a {
		return false
	}
	return int(a) == int(b)
}

// approxEqual is a named tolerance helper: its body may compare exactly —
// implementing the comparison once is its whole point.
func approxEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}
