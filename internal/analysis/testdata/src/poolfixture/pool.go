// Fixture for poolescape: release scratches, pooled crypto sources and
// raw sync.Pool values that escape, leak on a path, or settle correctly.
// Imports the real mm package, so the tracked rent/return pairs are the
// production ones.

package poolfixture

import (
	"sync"

	"adaptivemm/internal/mm"
	"adaptivemm/internal/workload"
)

type holder struct{ sc *mm.ReleaseScratch }

var pool sync.Pool

func use(*mm.ReleaseScratch) {}

// storeEscape parks a rented scratch in a field that outlives the rent.
func storeEscape(m *mm.Mechanism, h *holder) {
	sc := m.GetScratch()
	h.sc = sc // want `stored outside the function`
}

// goroutineEscape lets a goroutine outlive the release that rented sc.
func goroutineEscape(m *mm.Mechanism) {
	sc := m.GetScratch()
	go use(sc) // want `captured by a goroutine`
}

// returnEscape hands a pool-owned scratch to the caller.
func returnEscape(m *mm.Mechanism) *mm.ReleaseScratch {
	sc := m.GetScratch()
	return sc // want `escapes: returned to the caller`
}

// leakOnBranch forgets the put on the early return.
func leakOnBranch(m *mm.Mechanism, fail bool) {
	sc := m.GetScratch()
	if fail {
		return // want `not returned to its pool before this return`
	}
	m.PutScratch(sc)
}

// cryptoLeak forgets to release the pooled source on the early return.
func cryptoLeak(fail bool) {
	cs := mm.AcquireCryptoSource()
	if fail {
		return // want `not returned to its pool before this return`
	}
	mm.ReleaseCryptoSource(cs)
}

// deferredPut is the preferred spelling: covers panics too.
func deferredPut(m *mm.Mechanism) {
	sc := m.GetScratch()
	defer m.PutScratch(sc)
	use(sc)
}

// wrapperReturn is the allowed idiom poolescape must not flag: a raw
// sync.Pool Get may escape by return — that is how GetScratch itself is
// built.
func wrapperReturn() *holder {
	h := pool.Get().(*holder)
	return h
}

// wrapperCommaOk is the fallback form: on !ok nothing was rented, so
// neither outcome is trackable.
func wrapperCommaOk() *holder {
	if h, ok := pool.Get().(*holder); ok {
		return h
	}
	return &holder{}
}

// roundTrip rents and returns a raw pool value locally, mutating it
// through the rented pointer in between (not an escape).
func roundTrip() {
	h := pool.Get().(*holder)
	defer pool.Put(h)
	h.sc = nil
}

// --- StreamRelease rent/return pair: the stream owns a pooled release
// scratch and AnswerStream.Close is its put. The release is a method on
// the rented value itself.

func drain(st *mm.AnswerStream) {
	for {
		if _, _, ok := st.Next(); !ok {
			return
		}
	}
}

// streamDeferredClose is the preferred spelling; the err != nil branch
// rented nothing (StreamRelease already put its scratch back).
func streamDeferredClose(m *mm.Mechanism, w *workload.Workload, x []float64, p mm.Privacy, r mm.NoiseSource) {
	st, err := m.StreamRelease(w, x, p, r, 0)
	if err != nil {
		return
	}
	defer st.Close()
	drain(st)
}

// streamLeakOnBranch forgets Close on one path.
func streamLeakOnBranch(m *mm.Mechanism, w *workload.Workload, x []float64, p mm.Privacy, r mm.NoiseSource, fail bool) {
	st, err := m.StreamRelease(w, x, p, r, 0)
	if err != nil {
		return
	}
	if fail {
		return // want `not returned to its pool before this return`
	}
	st.Close()
}

// streamReturnEscape hands the scratch-owning stream to the caller.
func streamReturnEscape(m *mm.Mechanism, w *workload.Workload, x []float64, p mm.Privacy, r mm.NoiseSource) *mm.AnswerStream {
	st, err := m.StreamRelease(w, x, p, r, 0)
	if err != nil {
		return nil
	}
	return st // want `escapes: returned to the caller`
}
