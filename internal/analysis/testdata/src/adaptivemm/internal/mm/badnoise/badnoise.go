// Fixture: PR 2's predictable-seed bug re-introduced under the mm
// production prefix (served via the loader overlay). Every violation
// here must fail the lint build.

package badnoise

import (
	"math/rand" // want `math/rand imported in production noise package`
	"time"
)

// NewSeeded seeds release noise from the wall clock — the exact bug the
// NoiseSource abstraction removed.
func NewSeeded() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `wall-clock-derived seed`
}
