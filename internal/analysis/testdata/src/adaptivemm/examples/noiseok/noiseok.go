// Fixture: example code is exempt from noiserand — deterministic,
// reproducible streams are the point of examples and benchmark drivers.
// No diagnostics expected anywhere in this package.

package noiseok

import (
	"math/rand"
	"time"
)

// Deterministic returns a reproducible stream for an example walkthrough.
func Deterministic() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano()))
}
