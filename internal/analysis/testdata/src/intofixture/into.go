// Fixture for intoalias: write-into kernels called with a destination
// that provably aliases an input. Exercises both the method form (which
// matches any operator/solver receiver) and the real linalg
// package-level kernels.

package intofixture

import "adaptivemm/internal/linalg"

type fakeOp struct{}

func (fakeOp) MulVecInto(dst, x []float64) {}

func methods(o fakeOp, dst, x []float64) {
	o.MulVecInto(dst, x)
	o.MulVecInto(x, x)   // want `destination x aliases input`
	o.MulVecInto((x), x) // want `destination x aliases input`
}

func funcs(op linalg.Operator, dst, x []float64) {
	linalg.MulVecInto(op, dst, x)
	linalg.MulVecInto(op, x, x) // want `destination x aliases input`
}
