// Fixture for budgetsettle: reservations leaked on a path, discarded
// outright, or settled correctly. Imports the real accountant, so this
// is literally the leaked-Reserve bug class failing the lint build.

package budgetfixture

import (
	"errors"

	"adaptivemm/internal/accountant"
)

var errBad = errors.New("bad")

func work() error { return nil }

// leakOnReturn forgets the reservation on an unrelated error return.
func leakOnReturn(a *accountant.Accountant) error {
	res, err := a.Reserve("d", accountant.Budget{Epsilon: 1})
	if err != nil {
		return err // error path: res is nil, propagating err is fine
	}
	if work() != nil {
		return errBad // want `leaks on this return`
	}
	res.Commit()
	return nil
}

// leakAtEnd never settles on any path: flagged at the acquisition.
func leakAtEnd(a *accountant.Accountant) {
	res, _ := a.Reserve("d", accountant.Budget{Epsilon: 1}) // want `unsettled at function end`
	_ = res
}

// discarded can never be settled at all.
func discarded(a *accountant.Accountant) {
	_, _ = a.Reserve("d", accountant.Budget{Epsilon: 1}) // want `result discarded`
}

// leakInLoop re-reserves every iteration without settling the previous
// reservation.
func leakInLoop(a *accountant.Accountant, names []string) {
	for _, n := range names {
		res, err := a.Reserve(n, accountant.Budget{Epsilon: 1}) // want `unsettled at end of loop body`
		if err != nil {
			continue
		}
		_ = res
	}
}

// deferredRefund is the preferred spelling: Refund after Commit is a
// no-op and the defer covers panics.
func deferredRefund(a *accountant.Accountant) error {
	res, err := a.Reserve("d", accountant.Budget{Epsilon: 1})
	if err != nil {
		return err
	}
	defer res.Refund()
	if err := work(); err != nil {
		return err
	}
	res.Commit()
	return nil
}

// branchSettle settles explicitly on every branch.
func branchSettle(a *accountant.Accountant, commit bool) error {
	res, err := a.Reserve("d", accountant.Budget{Epsilon: 1})
	if err != nil {
		return err
	}
	if commit {
		res.Commit()
	} else {
		res.Refund()
	}
	return nil
}

// transfer hands the settle obligation to the caller with the value.
func transfer(a *accountant.Accountant) (*accountant.Reservation, error) {
	res, err := a.Reserve("d", accountant.Budget{Epsilon: 1})
	if err != nil {
		return nil, err
	}
	return res, nil
}
