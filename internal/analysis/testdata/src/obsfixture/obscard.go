// Fixture for obscard: metric names and registration-time label values
// must be compile-time constants. Imports the real obs package, so this
// is literally the unbounded-cardinality bug class failing the lint
// build.

package obsfixture

import (
	"fmt"

	"adaptivemm/internal/obs"
)

const goodName = "am_good_total"

// register exercises the constant and non-constant registration shapes.
func register(r *obs.Registry, dataset string, i int) {
	// Constant names and label values pass.
	r.Counter("am_requests_total", "requests", obs.L("route", "answer"))
	r.Gauge(goodName+"_gauge", "derived constant name is fine")
	r.Histogram("am_latency_seconds", "latency", obs.DefTimeBuckets, obs.L("stage", "infer"))

	// A name computed from data is the unbounded-series bug.
	r.Counter("am_"+dataset+"_total", "per-dataset family") // want `metric name is not a compile-time constant`

	// A label value computed from data is the same bug on one family.
	r.Counter("am_requests_total", "requests", obs.L("dataset", dataset))                         // want `label value is not a compile-time constant`
	r.Gauge("am_shard_depth", "per-shard", obs.L("shard", fmt.Sprintf("%d", i)))                  // want `label value is not a compile-time constant`
	r.Histogram("am_rpc_seconds", "rpc", obs.DefTimeBuckets, obs.L(dataset, "v"))                 // want `label name is not a compile-time constant`
	r.RegisterCounter("am_adopted_total", "adopted", &obs.Counter{}, obs.L("k", dataset))         // want `label value is not a compile-time constant`
	r.GaugeFunc("am_fn_"+dataset, "dynamic gaugefunc name", func(func(float64, ...obs.Label)) {}) // want `metric name is not a compile-time constant`

	// A documented bounded set is the escape hatch.
	names := [2]string{"a", "b"}
	for idx := range names {
		//lint:allow obscard: label values index a compile-time-constant table
		r.Counter("am_table_total", "by table", obs.L("name", names[idx]))
	}

	// Collect-at-scrape emit callbacks are exempt: their labels are
	// rebuilt each scrape and dynamic by design.
	r.GaugeFunc("am_spent", "by dataset", func(emit func(float64, ...obs.Label)) {
		emit(1, obs.L("dataset", dataset))
	})
}
