// Fixture for the //lint:allow escape hatch. TestLintAllowFixture pins
// these exact line numbers; editing this file means updating that test.

package lintallowfixture

// cmp exercises the three escape-hatch behaviors.
func cmp(a, b float64) bool {
	//lint:allow floateq: reasoned allow; suppresses the comparison below
	if a == b {
		return true
	}
	//lint:allow
	if a == b+1 {
		return false
	}
	return a != b
}
