// The obscard analyzer. The metrics registry pre-registers every series
// at startup and recording is lock-free atomics on those fixed series;
// that economy only holds if metric names and registration-time label
// values are drawn from sets the reviewer can see are bounded. A name or
// label value computed from request data turns the registry into an
// unbounded allocation sink (capped at runtime by maxSeriesPerFamily,
// but every dropped series is telemetry silently lost). This analyzer
// makes the boundedness reviewable: at every Registry registration call
// the metric name must be a compile-time constant, and so must the
// values of obs.L labels passed to it. Dynamic-but-bounded values
// (indexing a fixed table, iterating a startup-time registry) are
// documented exceptions via //lint:allow. Collect-at-scrape emit
// callbacks inside GaugeFunc are exempt: their label sets are rebuilt
// fresh each scrape and carry genuinely dynamic values (dataset names,
// worker URLs) by design.

package analysis

import (
	"go/ast"
	"go/types"
)

// obsRegistrationMethods are the *obs.Registry methods that create
// series; their name argument and obs.L label values must be
// compile-time constants.
var obsRegistrationMethods = map[string]bool{
	"Counter":         true,
	"Gauge":           true,
	"Histogram":       true,
	"GaugeFunc":       true,
	"RegisterCounter": true,
}

const obsPkgPath = "adaptivemm/internal/obs"

// ObsCard requires compile-time-constant metric names and label values
// at metrics-registry registration sites.
var ObsCard = &Analyzer{
	Name: "obscard",
	Doc: "require compile-time-constant metric names and label values at obs.Registry registration calls: " +
		"dynamic names or labels make series cardinality unbounded (dropped series = telemetry silently lost)",
	Run: runObsCard,
}

func runObsCard(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isObsRegistration(pass.TypesInfo, call) {
				return true
			}
			if len(call.Args) > 0 && !isConstExpr(pass.TypesInfo, call.Args[0]) {
				pass.Reportf(call.Args[0].Pos(),
					"metric name is not a compile-time constant: dynamic names make the series set unbounded; use a const (or //lint:allow with why the set is bounded)")
			}
			for _, arg := range call.Args[1:] {
				l, ok := asObsLabelCall(pass.TypesInfo, arg)
				if !ok || len(l.Args) != 2 {
					continue
				}
				if !isConstExpr(pass.TypesInfo, l.Args[0]) {
					pass.Reportf(l.Args[0].Pos(),
						"label name is not a compile-time constant at a registration site")
				}
				if !isConstExpr(pass.TypesInfo, l.Args[1]) {
					pass.Reportf(l.Args[1].Pos(),
						"label value is not a compile-time constant at a registration site: dynamic values make series cardinality unbounded; enumerate a fixed set (or //lint:allow with why the set is bounded)")
				}
			}
			return true
		})
	}
	return nil
}

// isObsRegistration reports whether call is one of the series-creating
// methods on *obs.Registry.
func isObsRegistration(info *types.Info, call *ast.CallExpr) bool {
	fn, ok := calleeObj(info, call).(*types.Func)
	if !ok || !obsRegistrationMethods[fn.Name()] || fn.Pkg() == nil || fn.Pkg().Path() != obsPkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if ptr, isPtr := recv.(*types.Pointer); isPtr {
		recv = ptr.Elem()
	}
	named, isNamed := recv.(*types.Named)
	return isNamed && named.Obj().Name() == "Registry"
}

// asObsLabelCall unwraps arg as a call to obs.L.
func asObsLabelCall(info *types.Info, arg ast.Expr) (*ast.CallExpr, bool) {
	call, ok := ast.Unparen(arg).(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	if obj := calleeObj(info, call); obj == nil || !isPkgFunc(obj, obsPkgPath, "L") {
		return nil, false
	}
	return call, true
}

// isConstExpr reports whether the type checker evaluated e to a
// constant.
func isConstExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}
