// Package loading for the analysis suite. The module has no external
// dependencies, so a loader over go/parser and go/types covers it
// completely: module-local import paths resolve to directories under the
// module root (or under an optional overlay root, which is how the
// fixture runner serves testdata packages), and standard-library paths
// are type-checked from GOROOT source via go/importer's source importer —
// no network, no toolchain invocation, no export data.
//
// Only non-test files are loaded: the invariants the analyzers encode
// guard production code, and several of them (noiserand, floateq)
// explicitly exempt tests.

package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path the package was loaded as.
	Path string
	// Dir is the directory its files were read from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader loads and type-checks packages of one module (plus anything
// they import). It caches by import path, so a whole-repo run
// type-checks each package — and each standard-library dependency —
// once.
type Loader struct {
	ModPath string // module path from go.mod
	ModDir  string // module root directory
	// Overlay, when non-empty, is a directory searched before the module
	// for any import path (GOPATH-style: path p lives at Overlay/p). The
	// fixture runner points it at testdata/src.
	Overlay string

	fset *token.FileSet
	std  types.ImporterFrom
	pkgs map[string]*loadResult
}

type loadResult struct {
	pkg *Package
	err error
}

// NewLoader returns a loader for the module rooted at dir (the directory
// holding go.mod).
func NewLoader(dir string) (*Loader, error) {
	modPath, err := modulePath(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModPath: modPath,
		ModDir:  dir,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:    map[string]*loadResult{},
	}, nil
}

// modulePath reads the module path from dir/go.mod.
func modulePath(dir string) (string, error) {
	data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("analysis: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s/go.mod", dir)
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// dirFor maps an import path to the directory it loads from, or "" when
// the path is not served by the overlay or the module.
func (l *Loader) dirFor(path string) string {
	if l.Overlay != "" {
		dir := filepath.Join(l.Overlay, filepath.FromSlash(path))
		// The overlay wins only when it actually holds a package: a fixture
		// nested under a production prefix (adaptivemm/internal/mm/badnoise)
		// creates intermediate directories that must not shadow the real
		// packages its fixtures import.
		if names, err := goFiles(dir); err == nil && len(names) > 0 {
			return dir
		}
	}
	if path == l.ModPath {
		return l.ModDir
	}
	if rest, ok := strings.CutPrefix(path, l.ModPath+"/"); ok {
		return filepath.Join(l.ModDir, filepath.FromSlash(rest))
	}
	return ""
}

// Load loads and type-checks the package at the given import path.
func (l *Loader) Load(path string) (*Package, error) {
	if res, ok := l.pkgs[path]; ok {
		if res == nil {
			return nil, fmt.Errorf("analysis: import cycle through %q", path)
		}
		return res.pkg, res.err
	}
	dir := l.dirFor(path)
	if dir == "" {
		return nil, fmt.Errorf("analysis: import path %q is outside the module", path)
	}
	l.pkgs[path] = nil // in progress: a re-entrant Load is a cycle
	pkg, err := l.check(path, dir)
	l.pkgs[path] = &loadResult{pkg: pkg, err: err}
	return pkg, err
}

// LoadDir loads the package in dir, deriving its import path from the
// module root.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.ModDir, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("analysis: %s is outside the module root %s", dir, l.ModDir)
	}
	if rel == "." {
		return l.Load(l.ModPath)
	}
	return l.Load(l.ModPath + "/" + filepath.ToSlash(rel))
}

// check parses and type-checks one package directory.
func (l *Loader) check(path, dir string) (*Package, error) {
	names, err := goFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no buildable Go files in %s", dir)
	}
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var firstErr error
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if firstErr != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, firstErr)
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}, nil
}

// goFiles lists dir's buildable non-test Go files, sorted.
func goFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// loaderImporter adapts Loader to types.ImporterFrom: module-local (and
// overlay) paths load through the loader, everything else — the standard
// library — through the source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	return li.ImportFrom(path, "", 0)
}

func (li *loaderImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	l := (*Loader)(li)
	if l.dirFor(path) != "" {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, srcDir, mode)
}

// PackageDirs walks root and returns every directory holding buildable Go
// files, skipping testdata, hidden directories, and vendored trees — the
// expansion of the "./..." pattern amlint analyzes.
func PackageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		names, err := goFiles(path)
		if err != nil {
			return err
		}
		if len(names) > 0 {
			dirs = append(dirs, path)
		}
		return nil
	})
	return dirs, err
}
