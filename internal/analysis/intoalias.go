// The intoalias analyzer. The write-into kernel layer (PR 6) reads its
// inputs while streaming its destination: MulVecInto(dst, x) with
// dst == x overwrites x[i] before row i+1 reads it, and the CGLS solvers
// treat b and dst as disjoint residual/iterate storage. The operators do
// not (and for zero-alloc reasons cannot) defensively copy, so aliasing
// is silent numeric corruption. The analyzer flags every call to a
// write-into kernel whose destination argument is syntactically identical
// to one of its inputs — the provable aliasing case; distinct expressions
// naming overlapping memory remain the caller's responsibility.

package analysis

import (
	"go/ast"
	"go/types"
)

// linalgPkg is the package whose write-into kernels are checked.
const linalgPkg = "adaptivemm/internal/linalg"

// intoFuncs maps package-level linalg functions to the argument indices
// of (dst, inputs).
var intoFuncs = map[string]struct {
	dst  int
	srcs []int
}{
	"MulVecInto":        {dst: 1, srcs: []int{2}}, // MulVecInto(op, dst, x)
	"MulVecTInto":       {dst: 1, srcs: []int{2}}, // MulVecTInto(op, dst, y)
	"SolveCGLSInto":     {dst: 2, srcs: []int{1}}, // SolveCGLSInto(a, b, dst, o, ws)
	"SolveNormalCGInto": {dst: 2, srcs: []int{1}},
	"SolveSymCGInto":    {dst: 2, srcs: []int{1}},
}

// intoMethods maps method names (on any operator/solver type) to the
// argument indices of (dst, inputs): MulVecInto(dst, x) and friends.
var intoMethods = map[string]struct {
	dst  int
	srcs []int
}{
	"MulVecInto":     {dst: 0, srcs: []int{1}},
	"MulVecTInto":    {dst: 0, srcs: []int{1}},
	"AnswerInto":     {dst: 0, srcs: []int{1}}, // TreeSolver.AnswerInto(dst, x, ws)
	"SolveLSInto":    {dst: 0, srcs: []int{1}}, // TreeSolver.SolveLSInto(dst, y, ws)
	"MulQueriesInto": {dst: 0, srcs: []int{1}},
}

// IntoAlias flags write-into kernel calls whose destination provably
// aliases an input.
var IntoAlias = &Analyzer{
	Name: "intoalias",
	Doc: "write-into kernels (MulVecInto, Solve*Into, ...) must not be called with a destination " +
		"that aliases an input: the kernels stream dst while reading the inputs",
	Run: runIntoAlias,
}

func runIntoAlias(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			dst, srcs, ok := intoArgs(pass, call)
			if !ok {
				return true
			}
			d := exprString(ast.Unparen(dst))
			for _, s := range srcs {
				if exprString(ast.Unparen(s)) == d {
					pass.Reportf(call.Pos(),
						"destination %s aliases input of %s: the kernel streams its destination while reading this input; use a separate buffer",
						d, callName(call))
				}
			}
			return true
		})
	}
	return nil
}

// intoArgs resolves a call to a write-into kernel and returns its
// destination and input arguments.
func intoArgs(pass *Pass, call *ast.CallExpr) (dst ast.Expr, srcs []ast.Expr, ok bool) {
	obj := calleeObj(pass.TypesInfo, call)
	fn, isFn := obj.(*types.Func)
	if !isFn {
		return nil, nil, false
	}
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig {
		return nil, nil, false
	}
	if sig.Recv() == nil {
		spec, tracked := intoFuncs[fn.Name()]
		if !tracked || fn.Pkg() == nil || fn.Pkg().Path() != linalgPkg {
			return nil, nil, false
		}
		return pick(call, spec.dst, spec.srcs)
	}
	spec, tracked := intoMethods[fn.Name()]
	if !tracked {
		return nil, nil, false
	}
	return pick(call, spec.dst, spec.srcs)
}

func pick(call *ast.CallExpr, dstIdx int, srcIdxs []int) (ast.Expr, []ast.Expr, bool) {
	if dstIdx >= len(call.Args) {
		return nil, nil, false
	}
	var srcs []ast.Expr
	for _, i := range srcIdxs {
		if i < len(call.Args) {
			srcs = append(srcs, call.Args[i])
		}
	}
	return call.Args[dstIdx], srcs, len(srcs) > 0
}

// callName renders the called function for diagnostics.
func callName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return "call"
}
