// Package analysis is the engine's static-analysis suite: a small,
// dependency-free framework in the shape of golang.org/x/tools/go/analysis
// plus the analyzers that mechanize the invariants this codebase's
// correctness arguments rest on — invariants the compiler cannot see and
// that were historically caught (or missed) in hand review:
//
//   - noiserand: release noise must come from a CSPRNG-backed NoiseSource;
//     math/rand and wall-clock seeding are forbidden in production
//     packages (PR 2 shipped a predictable-seed privacy bug).
//   - budgetsettle: every accountant.Reserve must be settled
//     (Commit/Refund) on all control-flow paths, including panics —
//     leaked reservations permanently shrink a dataset's budget.
//   - poolescape: values rented from pools (release scratch, crypto
//     sources, response buffers, solver workspaces) must be returned on
//     every path and must not outlive the release that rented them.
//   - floateq: no ==/!= on floating-point operands outside tolerance
//     helpers and exact-zero sentinel checks.
//   - intoalias: write-into kernels (MulVecInto and friends) must not be
//     called with a destination that provably aliases an input.
//   - obscard: metric names and label values at obs.Registry
//     registration sites must be compile-time constants — dynamic ones
//     make series cardinality unbounded and telemetry silently droppable.
//
// The framework mirrors the x/tools API (Analyzer, Pass, Diagnostic, a
// testdata/src fixture runner with "// want" comments) so the analyzers
// could be ported to a real multichecker verbatim; it is implemented on
// go/parser and go/types only, because this module deliberately has no
// external dependencies.
//
// Suppression. A finding that is intentional is silenced with the escape
// hatch
//
//	expr //lint:allow <reason>
//
// on the flagged line (or on the line directly above it). The reason is
// mandatory: an allow without one is itself a diagnostic. Suppressions
// are the documented exceptions to an invariant — docs/STATIC_ANALYSIS.md
// explains when each is acceptable.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check, in the shape of
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the amlint
	// command line.
	Name string
	// Doc is a one-paragraph description: the invariant the analyzer
	// encodes and why it is load-bearing.
	Doc string
	// Run reports the analyzer's findings on one package through
	// pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// allowDirective is the suppression escape hatch. The reason after the
// directive is mandatory.
const allowDirective = "//lint:allow"

// suppression is one //lint:allow comment: it silences diagnostics on its
// own line and on the line directly below it (the comment-above form).
type suppression struct {
	file   string
	line   int
	reason string
	pos    token.Pos
}

// collectSuppressions finds every //lint:allow directive in the package.
// Directives with an empty reason are reported as findings themselves:
// the escape hatch exists to *document* exceptions, not to hide them.
func collectSuppressions(fset *token.FileSet, files []*ast.File, diags *[]Diagnostic) []suppression {
	var sups []suppression
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowDirective) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, allowDirective)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //lint:allowedsomething — not the directive
				}
				pos := fset.Position(c.Pos())
				reason := strings.TrimSpace(rest)
				if reason == "" {
					*diags = append(*diags, Diagnostic{
						Analyzer: "lintallow",
						Pos:      pos,
						Message:  "//lint:allow needs a reason: say why the invariant does not apply here",
					})
					continue
				}
				sups = append(sups, suppression{file: pos.Filename, line: pos.Line, reason: reason, pos: c.Pos()})
			}
		}
	}
	return sups
}

// Run runs the analyzers over one loaded package and returns the
// surviving diagnostics, sorted by position. Findings on a line holding
// (or directly below) a //lint:allow directive are suppressed; an allow
// directive without a reason is itself a finding.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
		}
	}
	sups := collectSuppressions(pkg.Fset, pkg.Files, &diags)
	kept := diags[:0]
	for _, d := range diags {
		if !suppressed(d, sups) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		if kept[i].Pos.Filename != kept[j].Pos.Filename {
			return kept[i].Pos.Filename < kept[j].Pos.Filename
		}
		if kept[i].Pos.Line != kept[j].Pos.Line {
			return kept[i].Pos.Line < kept[j].Pos.Line
		}
		return kept[i].Message < kept[j].Message
	})
	return kept, nil
}

func suppressed(d Diagnostic, sups []suppression) bool {
	if d.Analyzer == "lintallow" {
		return false // missing-reason findings cannot be allowed away
	}
	for _, s := range sups {
		if s.file == d.Pos.Filename && (s.line == d.Pos.Line || s.line == d.Pos.Line-1) {
			return true
		}
	}
	return false
}

// All returns the full analyzer suite in a fixed order.
func All() []*Analyzer {
	return []*Analyzer{NoiseRand, BudgetSettle, PoolEscape, FloatEq, IntoAlias, ObsCard}
}

// ByName resolves a comma-separated analyzer list ("" means all).
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have %s)", n, strings.Join(analyzerNames(), ", "))
		}
		out = append(out, a)
	}
	return out, nil
}

func analyzerNames() []string {
	var names []string
	for _, a := range All() {
		names = append(names, a.Name)
	}
	return names
}
