// Package binenc holds the binary-encoding primitives shared by the
// operator codec (internal/linalg) and the plan codec
// (internal/planstore): uvarint-framed integers, IEEE-754 floats, and a
// bounds-checked reader whose every length is validated against the
// bytes actually remaining, so corrupt or crafted input yields an error
// — never a panic or an absurd allocation.
package binenc

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
)

// --- writers (append to a bytes.Buffer) ---

// PutUvarint appends v as a uvarint.
func PutUvarint(w *bytes.Buffer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	w.Write(buf[:binary.PutUvarint(buf[:], v)])
}

// PutInt appends a non-negative int as a uvarint.
func PutInt(w *bytes.Buffer, v int) { PutUvarint(w, uint64(v)) }

// PutU64 appends v as 8 little-endian bytes.
func PutU64(w *bytes.Buffer, v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	w.Write(buf[:])
}

// PutFloat appends the IEEE-754 bits of f.
func PutFloat(w *bytes.Buffer, f float64) { PutU64(w, math.Float64bits(f)) }

// PutFloats appends a length-prefixed float slice.
func PutFloats(w *bytes.Buffer, fs []float64) {
	PutInt(w, len(fs))
	for _, f := range fs {
		PutFloat(w, f)
	}
}

// PutInts appends a length-prefixed int slice.
func PutInts(w *bytes.Buffer, is []int) {
	PutInt(w, len(is))
	for _, v := range is {
		PutInt(w, v)
	}
}

// PutString appends a length-prefixed string.
func PutString(w *bytes.Buffer, s string) {
	PutInt(w, len(s))
	w.WriteString(s)
}

// PutBytes appends a length-prefixed byte slice.
func PutBytes(w *bytes.Buffer, b []byte) {
	PutInt(w, len(b))
	w.Write(b)
}

// PutBool appends one 0/1 byte.
func PutBool(w *bytes.Buffer, b bool) {
	if b {
		w.WriteByte(1)
	} else {
		w.WriteByte(0)
	}
}

// --- bounds-checked reader ---

// Reader is a cursor over an in-memory record. Length prefixes are
// always validated against the bytes remaining *after* the prefix itself
// is consumed, so a crafted length can neither slice out of bounds nor
// trigger a huge allocation.
type Reader struct {
	b  []byte
	at int
}

// NewReader returns a reader over b.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Remaining returns how many bytes are left.
func (r *Reader) Remaining() int { return len(r.b) - r.at }

// Byte reads one byte.
func (r *Reader) Byte() (byte, error) {
	if r.at >= len(r.b) {
		return 0, fmt.Errorf("binenc: record truncated")
	}
	v := r.b[r.at]
	r.at++
	return v, nil
}

// Bool reads one byte as a bool (nonzero = true).
func (r *Reader) Bool() (bool, error) {
	v, err := r.Byte()
	return v != 0, err
}

// Uvarint reads one uvarint.
func (r *Reader) Uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.at:])
	if n <= 0 {
		return 0, fmt.Errorf("binenc: record truncated (bad varint)")
	}
	r.at += n
	return v, nil
}

// IntBounded reads a non-negative int and refuses values above max (a
// non-positive max refuses everything but zero).
func (r *Reader) IntBounded(max int, what string) (int, error) {
	v, err := r.Uvarint()
	if err != nil {
		return 0, err
	}
	if max < 0 {
		max = 0
	}
	if v > uint64(max) {
		return 0, fmt.Errorf("binenc: %s %d exceeds limit %d", what, v, max)
	}
	return int(v), nil
}

// U64 reads 8 little-endian bytes.
func (r *Reader) U64() (uint64, error) {
	if r.Remaining() < 8 {
		return 0, fmt.Errorf("binenc: record truncated (u64)")
	}
	v := binary.LittleEndian.Uint64(r.b[r.at:])
	r.at += 8
	return v, nil
}

// Float reads one IEEE-754 float.
func (r *Reader) Float() (float64, error) {
	v, err := r.U64()
	return math.Float64frombits(v), err
}

// String reads a length-prefixed string. The length is checked against
// the bytes remaining after the prefix.
func (r *Reader) String() (string, error) {
	n, err := r.Uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(r.Remaining()) {
		return "", fmt.Errorf("binenc: string length %d exceeds the %d bytes remaining", n, r.Remaining())
	}
	s := string(r.b[r.at : r.at+int(n)])
	r.at += int(n)
	return s, nil
}

// Bytes reads a length-prefixed byte slice (a view into the record, not
// a copy).
func (r *Reader) Bytes() ([]byte, error) {
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(r.Remaining()) {
		return nil, fmt.Errorf("binenc: blob length %d exceeds the %d bytes remaining", n, r.Remaining())
	}
	b := r.b[r.at : r.at+int(n)]
	r.at += int(n)
	return b, nil
}

// Ints reads a length-prefixed int slice. Elements are capped at 2³¹−1.
func (r *Reader) Ints() ([]int, error) {
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	// Each element is at least one byte on the wire.
	if n > uint64(r.Remaining()) {
		return nil, fmt.Errorf("binenc: int-slice length %d exceeds the %d bytes remaining", n, r.Remaining())
	}
	out := make([]int, n)
	for i := range out {
		v, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		if v > math.MaxInt32 {
			return nil, fmt.Errorf("binenc: int value %d out of range", v)
		}
		out[i] = int(v)
	}
	return out, nil
}

// Floats reads a length-prefixed float slice.
func (r *Reader) Floats() ([]float64, error) {
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(r.Remaining()/8) {
		return nil, fmt.Errorf("binenc: float-slice length %d exceeds the %d bytes remaining", n, r.Remaining())
	}
	out := make([]float64, n)
	for i := range out {
		if out[i], err = r.Float(); err != nil {
			return nil, err
		}
	}
	return out, nil
}
