package experiments

import (
	"fmt"
	"time"

	"adaptivemm/internal/core"
	"adaptivemm/internal/domain"
	"adaptivemm/internal/mm"
	"adaptivemm/internal/workload"
)

// Ablation reports two design choices DESIGN.md calls out beyond the
// paper's own figures: the interior-point vs first-order solver trade-off,
// and the effect of the column-completion step (steps 4–5 of Program 2).
func Ablation(cfg Config) ([]*Table, error) {
	p := cfg.Privacy
	n := scaleCells(cfg.Scale)

	solver := &Table{
		ID:     "ablation",
		Title:  "Solver ablation: interior point vs first order",
		Header: []string{"Workload", "Solver", "Workload error", "Time"},
	}
	workloads := []*workload.Workload{
		workload.AllRange(domain.MustShape(n)),
		workload.Prefix(n),
	}
	for _, w := range workloads {
		for _, s := range []struct {
			name   string
			solver core.Solver
		}{
			{"barrier (Newton)", core.SolverBarrier},
			{"first-order (Adam)", core.SolverFirstOrder},
		} {
			start := time.Now()
			res, err := core.Design(w, core.Options{Solver: s.solver})
			if err != nil {
				return nil, err
			}
			d := time.Since(start)
			e, err := mm.Error(w, res.Op, p)
			if err != nil {
				return nil, err
			}
			solver.Rows = append(solver.Rows, []string{w.Name(), s.name, fmtF(e), fmtDur(d)})
		}
	}
	solver.Notes = append(solver.Notes, fmt.Sprintf("scale=%s (%d cells)", cfg.Scale, n))

	completion := &Table{
		ID:     "ablation",
		Title:  "Column completion ablation (steps 4–5 of Program 2)",
		Header: []string{"Workload", "With completion", "Without", "Improvement"},
	}
	for _, w := range []*workload.Workload{
		workload.Fig1(),
		workload.AllRange(domain.MustShape(n / 4)),
		workload.Prefix(n / 4),
	} {
		with, _, err := designError(w, p, core.Options{})
		if err != nil {
			return nil, err
		}
		without, _, err := designError(w, p, core.Options{SkipCompletion: true})
		if err != nil {
			return nil, err
		}
		completion.Rows = append(completion.Rows, []string{
			w.Name(), fmtF(with), fmtF(without), fmtRatio(without / with),
		})
	}
	return []*Table{solver, completion}, nil
}
