// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec 5) as structured tables: absolute (workload) error
// comparisons against the Hierarchical, Wavelet, Fourier and DataCube
// strategies with the Thm 2 lower bound (Figs 3a/3c, Table 2, Fig 5),
// relative-error measurements on the two datasets (Figs 3b/3d), and the
// speed/quality trade-off of the Sec 4 performance optimizations (Fig 4).
//
// Experiments run at three scales: "small" for tests, "medium" (default)
// for quick interactive runs, and "full" for the paper's 2048/8192-cell
// configurations. Absolute-error conclusions are scale-stable because every
// method sees the same domain.
package experiments

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"adaptivemm/internal/mm"
)

// Table is one regenerated artifact (a figure panel or table).
type Table struct {
	// ID identifies the experiment (e.g. "fig3a").
	ID string
	// Title describes the artifact, mirroring the paper's caption.
	Title string
	// Header labels the columns.
	Header []string
	// Rows hold formatted cells.
	Rows [][]string
	// Notes record caveats (scale substitutions, sampling choices).
	Notes []string
}

// Config controls an experiment run.
type Config struct {
	// Scale is "small", "medium" or "full". Default "medium".
	Scale string
	// Privacy defaults to the paper's ε = 0.5, δ = 1e-4.
	Privacy mm.Privacy
	// Seed drives all randomized workloads and mechanisms. Default 1.
	Seed int64
	// Trials is the Monte-Carlo repetition count for relative error.
	// Default 3.
	Trials int
}

func (c Config) withDefaults() Config {
	if c.Scale == "" {
		c.Scale = "medium"
	}
	if c.Privacy.Epsilon == 0 {
		c.Privacy = mm.Privacy{Epsilon: 0.5, Delta: 1e-4}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Trials <= 0 {
		c.Trials = 3
	}
	return c
}

// runner produces the tables of one experiment.
type runner func(Config) ([]*Table, error)

var registry = map[string]struct {
	run   runner
	title string
}{
	"table1":    {Table1, "Table 1: dataset dimensions and sizes"},
	"example4":  {Example4, "Example 4 / Fig 2: strategies for the Fig 1 workload"},
	"fig3a":     {Fig3a, "Fig 3(a): absolute error on range workloads"},
	"fig3b":     {Fig3b, "Fig 3(b): relative error on range workloads"},
	"fig3c":     {Fig3c, "Fig 3(c): absolute error on marginal workloads"},
	"fig3d":     {Fig3d, "Fig 3(d): relative error on marginal workloads"},
	"table2":    {Table2, "Table 2: alternative workloads"},
	"fig4":      {Fig4, "Fig 4: performance optimizations"},
	"fig5":      {Fig5, "Fig 5: choice of design queries"},
	"sec35":     {Sec35, "Sec 3.5: ε-DP (L1) variant of the weighting program"},
	"optstrat":  {OptStrat, "Problem 1: near-exact optimal strategies at small n"},
	"branching": {Branching, "Hierarchical branching-factor sweep vs Eigen-Design"},
	"sec41":     {Sec41, "Sec 4.1: closed-form marginal design"},
	"ablation":  {Ablation, "Ablations: solver choice and column completion"},
}

// IDs returns the known experiment identifiers in a stable order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Title returns the human title for an experiment id, or "".
func Title(id string) string { return registry[id].title }

// Run executes one experiment by id.
func Run(id string, cfg Config) ([]*Table, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
	}
	return e.run(cfg.withDefaults())
}

// fmtF formats an error value compactly.
func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', 4, 64) }

// fmtRatio formats a ratio like "1.31x".
func fmtRatio(v float64) string { return fmt.Sprintf("%.2fx", v) }

// fmtDur formats a duration with millisecond resolution.
func fmtDur(d time.Duration) string { return d.Round(time.Millisecond).String() }
