package experiments

import (
	"fmt"
	"math/rand"

	"adaptivemm/internal/core"
	"adaptivemm/internal/dataset"
	"adaptivemm/internal/linalg"
	"adaptivemm/internal/mm"
	"adaptivemm/internal/strategy"
	"adaptivemm/internal/workload"
)

// relDatasets returns the two evaluation datasets, projected down at
// reduced scales so the Monte-Carlo relative-error loop stays fast while
// preserving the data's skew.
func relDatasets(scale string) ([]*dataset.Dataset, error) {
	census := dataset.CensusLike()
	adult := dataset.AdultLike()
	if scale == "full" {
		return []*dataset.Dataset{census, adult}, nil
	}
	dims := [][]int{{0, 1}, {0, 2, 3}}
	if scale == "small" {
		dims = [][]int{{0}, {0, 3}}
	}
	c, err := census.Project(dims[0])
	if err != nil {
		return nil, err
	}
	a, err := adult.Project(dims[1])
	if err != nil {
		return nil, err
	}
	return []*dataset.Dataset{c, a}, nil
}

// Fig3b regenerates Fig 3(b): average relative error of Hierarchical,
// Wavelet and Eigen-Design on all-range and random-range workloads over the
// two datasets, sweeping ε. Strategies are designed once per workload on
// the row-normalized workload (the Sec 3.4 heuristic) and reused across ε.
func Fig3b(cfg Config) ([]*Table, error) {
	r := rand.New(rand.NewSource(cfg.Seed))
	ds, err := relDatasets(cfg.Scale)
	if err != nil {
		return nil, err
	}
	var tables []*Table
	for _, d := range ds {
		t := &Table{
			ID:     "fig3b",
			Title:  "Relative error on range workloads — " + d.Name,
			Header: []string{"Workload", "ε", "Hierarchical", "Wavelet", "EigenDesign"},
		}
		allRange, sampled := rangeEvalWorkload(d.Shape, r)
		workloads := []*workload.Workload{allRange, workload.RandomRange(d.Shape, d.Shape.Size(), r)}
		labels := []string{"all range", "random range"}
		if sampled {
			t.Notes = append(t.Notes, "all-range relative error estimated on a 2000-query sample")
		}
		for wi, w := range workloads {
			strategies, names, err := rangeStrategies(w, d)
			if err != nil {
				return nil, err
			}
			for _, eps := range epsSweep(cfg.Scale) {
				p := mm.Privacy{Epsilon: eps, Delta: cfg.Privacy.Delta}
				row := []string{labels[wi], fmt.Sprintf("%.1f", eps)}
				for _, a := range strategies {
					re, err := dataset.RelativeError(d, w, a, p,
						dataset.RelativeErrorOptions{Trials: cfg.Trials}, r)
					if err != nil {
						return nil, err
					}
					row = append(row, fmtF(re))
				}
				_ = names
				t.Rows = append(t.Rows, row)
			}
		}
		t.Notes = append(t.Notes, fmt.Sprintf("scale=%s; dataset %s (%s)", cfg.Scale, d.Name, d.Shape))
		tables = append(tables, t)
	}
	return tables, nil
}

// rangeStrategies builds the three compared strategies for a range
// workload over the dataset's domain: Hierarchical, Wavelet, and the
// eigen-strategy designed on the row-normalized workload (Sec 3.4).
func rangeStrategies(w *workload.Workload, d *dataset.Dataset) ([]*linalg.Matrix, []string, error) {
	norm := w.NormalizeRows()
	eig, err := designStrategy(norm, core.Options{})
	if err != nil {
		return nil, nil, err
	}
	return []*linalg.Matrix{
		strategy.Hierarchical(d.Shape, 2).A,
		strategy.Wavelet(d.Shape).A,
		eig,
	}, []string{"Hierarchical", "Wavelet", "EigenDesign"}, nil
}

// Fig3d regenerates Fig 3(d): relative error of Fourier, DataCube and
// Eigen-Design on marginal workloads over the two datasets.
func Fig3d(cfg Config) ([]*Table, error) {
	r := rand.New(rand.NewSource(cfg.Seed))
	ds, err := relDatasets(cfg.Scale)
	if err != nil {
		return nil, err
	}
	var tables []*Table
	for _, d := range ds {
		dims := d.Shape.Dims()
		t := &Table{
			ID:     "fig3d",
			Title:  "Relative error on marginal workloads — " + d.Name,
			Header: []string{"Workload", "ε", "Fourier", "DataCube", "EigenDesign"},
		}
		type entry struct {
			label   string
			w       *workload.Workload
			subsets [][]int
		}
		var entries []entry
		if dims >= 2 {
			var pairs [][]int
			for a := 0; a < dims; a++ {
				for b := a + 1; b < dims; b++ {
					pairs = append(pairs, []int{a, b})
				}
			}
			entries = append(entries, entry{"2-way marginal", workload.Marginals(d.Shape, 2), pairs})
		} else {
			entries = append(entries, entry{"1-way marginal", workload.Marginals(d.Shape, 1), [][]int{{0}}})
		}
		rw, rs := workload.RandomMarginals(d.Shape, 2*dims, r)
		entries = append(entries, entry{"random marginal", rw, rs})

		for _, e := range entries {
			norm := e.w.NormalizeRows()
			eig, err := designStrategy(norm, core.Options{})
			if err != nil {
				return nil, err
			}
			strategies := []*linalg.Matrix{
				strategy.Fourier(d.Shape, e.subsets).A,
				strategy.DataCube(d.Shape, e.subsets).A,
				eig,
			}
			for _, eps := range epsSweep(cfg.Scale) {
				p := mm.Privacy{Epsilon: eps, Delta: cfg.Privacy.Delta}
				row := []string{e.label, fmt.Sprintf("%.1f", eps)}
				for _, a := range strategies {
					re, err := dataset.RelativeError(d, e.w, a, p,
						dataset.RelativeErrorOptions{Trials: cfg.Trials}, r)
					if err != nil {
						return nil, err
					}
					row = append(row, fmtF(re))
				}
				t.Rows = append(t.Rows, row)
			}
		}
		t.Notes = append(t.Notes, fmt.Sprintf("scale=%s; dataset %s (%s)", cfg.Scale, d.Name, d.Shape))
		tables = append(tables, t)
	}
	return tables, nil
}
