package experiments

import (
	"fmt"

	"adaptivemm/internal/core"
	"adaptivemm/internal/domain"
	"adaptivemm/internal/mm"
	"adaptivemm/internal/strategy"
	"adaptivemm/internal/workload"
)

// Branching sweeps the branching factor of the Hierarchical competitor
// (Hay et al. use binary trees; the paper notes higher orders are
// possible) on range workloads, and contrasts every setting with the
// Eigen-Design strategy. Under L2 sensitivity moderate branching factors
// beat binary on 1-D ranges, but no fixed factor approaches the adaptive
// strategy — quantifying how much of the wavelet/hierarchical gap is just
// tree-shape tuning.
func Branching(cfg Config) ([]*Table, error) {
	p := cfg.Privacy
	n := scaleCells(cfg.Scale)
	line := domain.MustShape(n)
	w := workload.AllRange(line)

	t := &Table{
		ID:     "branching",
		Title:  fmt.Sprintf("Hierarchical branching factor sweep on all ranges [%d]", n),
		Header: []string{"Strategy", "Workload error", "vs bound"},
	}
	lb, err := mm.LowerBound(w, p)
	if err != nil {
		return nil, err
	}
	for _, b := range []int{2, 3, 4, 8, 16} {
		if b >= n {
			continue
		}
		e, err := strategyError(w, strategy.Hierarchical(line, b).A, p)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("Hierarchical b=%d", b), fmtF(e), fmtRatio(e / lb),
		})
	}
	wav, err := strategyError(w, strategy.Wavelet(line).A, p)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"Wavelet", fmtF(wav), fmtRatio(wav / lb)})
	eig, _, err := designError(w, p, core.Options{})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"EigenDesign", fmtF(eig), fmtRatio(eig / lb)})
	t.Rows = append(t.Rows, []string{"Lower bound", fmtF(lb), "1.00x"})
	t.Notes = append(t.Notes, fmt.Sprintf("scale=%s", cfg.Scale))
	return []*Table{t}, nil
}
