package experiments

import (
	"fmt"
	"time"

	"adaptivemm/internal/core"
	"adaptivemm/internal/mm"
	"adaptivemm/internal/workload"
)

// Sec41 demonstrates the low-rank marginal speedup of Sec 4.1 taken to its
// limit: marginal workloads have closed-form spectral structure, so the
// exactly optimal strategy (which meets the Thm 2 bound, explaining the
// paper's Fig 3c) is computable without any O(n³) decomposition. The table
// compares the closed form against the generic eigen-design pipeline in
// both error and time.
func Sec41(cfg Config) ([]*Table, error) {
	p := cfg.Privacy
	t := &Table{
		ID:     "sec41",
		Title:  "Closed-form marginal design vs generic pipeline (Sec 4.1)",
		Header: []string{"Shape", "Workload", "Generic err", "Generic time", "Closed-form err", "Closed-form time", "Bound"},
	}
	for _, shape := range marginalShapes(cfg.Scale) {
		dims := shape.Dims()
		var pairs [][]int
		for a := 0; a < dims; a++ {
			for b := a + 1; b < dims; b++ {
				pairs = append(pairs, []int{a, b})
			}
		}
		w := workload.Marginals(shape, 2)

		genErr, genTime, err := designError(w, p, core.Options{})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		res, err := core.DesignMarginals(shape, pairs)
		if err != nil {
			return nil, err
		}
		closedTime := time.Since(start)
		closedErr, err := mm.Error(w, res.Strategy, p)
		if err != nil {
			return nil, err
		}
		lb := mm.LowerBoundFromEigenvalues(res.Eigenvalues, w.NumQueries(), p)
		t.Rows = append(t.Rows, []string{
			shape.String(), "2-way marginal",
			fmtF(genErr), fmtDur(genTime),
			fmtF(closedErr), fmtDur(closedTime),
			fmtF(lb),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("scale=%s", cfg.Scale),
		"the closed form provably equals the singular value bound: β_T = m_T/n collapses Program 1 to one constraint",
	)
	return []*Table{t}, nil
}
