package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// smallCfg keeps experiment tests fast.
var smallCfg = Config{Scale: "small", Seed: 1, Trials: 2}

func TestIDsAndTitles(t *testing.T) {
	ids := IDs()
	if len(ids) != 14 {
		t.Fatalf("IDs = %v", ids)
	}
	for _, id := range ids {
		if Title(id) == "" {
			t.Fatalf("no title for %s", id)
		}
	}
	if Title("nope") != "" {
		t.Fatal("title for unknown id")
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("nope", smallCfg); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// runOne asserts an experiment produces non-empty well-formed tables.
func runOne(t *testing.T, id string) []*Table {
	t.Helper()
	tables, err := Run(id, smallCfg)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if len(tables) == 0 {
		t.Fatalf("%s: no tables", id)
	}
	for _, tb := range tables {
		if len(tb.Rows) == 0 {
			t.Fatalf("%s: empty table %q", id, tb.Title)
		}
		for _, row := range tb.Rows {
			if len(row) != len(tb.Header) {
				t.Fatalf("%s: row %v does not match header %v", id, row, tb.Header)
			}
		}
	}
	return tables
}

func TestTable1(t *testing.T) { runOne(t, "table1") }

func TestExample4Shape(t *testing.T) {
	tables := runOne(t, "example4")
	rows := tables[0].Rows
	// Ordered: self ≥ ... wavelet > eigen ≥ bound. Parse the error column.
	errs := map[string]float64{}
	for _, row := range rows {
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatalf("bad error cell %q", row[1])
		}
		errs[row[0]] = v
	}
	if !(errs["Eigen-Design (adaptive)"] < errs["Wavelet"] &&
		errs["Wavelet"] < errs["Identity"]) {
		t.Fatalf("example4 ordering broken: %v", errs)
	}
	if errs["Eigen-Design (adaptive)"] < errs["Lower bound (Thm 2)"]*(1-1e-9) {
		t.Fatal("eigen below lower bound")
	}
}

func TestFig3aShape(t *testing.T) {
	tables := runOne(t, "fig3a")
	// Eigen must never exceed the best of wavelet/hierarchical, and the
	// eigen/bound ratio must stay within the paper's 1.3.
	for _, row := range tables[0].Rows {
		hier := parse(t, row[2])
		wav := parse(t, row[3])
		eig := parse(t, row[4])
		lb := parse(t, row[5])
		best := hier
		if wav < best {
			best = wav
		}
		if eig > best*1.0001 {
			t.Fatalf("eigen %g worse than best competitor %g in row %v", eig, best, row)
		}
		if eig/lb > 1.3 {
			t.Fatalf("eigen/bound %g > 1.3 in row %v", eig/lb, row)
		}
	}
}

func TestFig3cShape(t *testing.T) {
	tables := runOne(t, "fig3c")
	for _, row := range tables[0].Rows {
		four := parse(t, row[2])
		dc := parse(t, row[3])
		eig := parse(t, row[4])
		lb := parse(t, row[5])
		best := four
		if dc < best {
			best = dc
		}
		if eig > best*1.0001 {
			t.Fatalf("eigen %g worse than best competitor %g in row %v", eig, best, row)
		}
		// Paper: eigen matches the bound on marginal workloads.
		if eig/lb > 1.1 {
			t.Fatalf("eigen/bound %g > 1.1 on marginals in row %v", eig/lb, row)
		}
	}
}

func TestFig3bRuns(t *testing.T) {
	tables := runOne(t, "fig3b")
	if len(tables) != 2 {
		t.Fatalf("want 2 dataset tables, got %d", len(tables))
	}
	// Errors decrease as ε grows within each workload block (same strategy,
	// less noise) — check first and last ε of the first workload.
	for _, tb := range tables {
		var lowEps, highEps float64
		for _, row := range tb.Rows {
			if row[0] != tb.Rows[0][0] {
				continue
			}
			v := parse(t, row[4]) // eigen column
			if row[1] == "0.5" {
				lowEps = v
			}
			if row[1] == "2.5" {
				highEps = v
			}
		}
		if lowEps == 0 || highEps == 0 {
			t.Fatalf("missing sweep rows in %q", tb.Title)
		}
		if highEps >= lowEps {
			t.Fatalf("relative error did not fall with ε: %g → %g", lowEps, highEps)
		}
	}
}

func TestFig3dRuns(t *testing.T) {
	tables := runOne(t, "fig3d")
	if len(tables) != 2 {
		t.Fatalf("want 2 dataset tables, got %d", len(tables))
	}
}

func TestTable2Shape(t *testing.T) {
	tables := runOne(t, "table2")
	rows := tables[0].Rows
	if len(rows) != 5 {
		t.Fatalf("want 5 workload rows, got %d", len(rows))
	}
	for _, row := range rows {
		best := parseRatio(t, row[2])
		worst := parseRatio(t, row[3])
		bound := parseRatio(t, row[4])
		if worst < best {
			t.Fatalf("worst ratio < best ratio in %v", row)
		}
		// Eigen should never lose to the best competitor by more than noise.
		if best < 0.99 {
			t.Fatalf("eigen lost to a competitor: %v", row)
		}
		if bound < 0.99 {
			t.Fatalf("eigen below bound: %v", row)
		}
	}
}

func TestFig4Shape(t *testing.T) {
	tables := runOne(t, "fig4")
	if len(tables) != 2 {
		t.Fatalf("want 2 panels, got %d", len(tables))
	}
	for _, tb := range tables {
		sawSep, sawPV := false, false
		for _, row := range tb.Rows {
			switch row[0] {
			case "Eigen separation":
				sawSep = true
			case "Principal vectors":
				sawPV = true
			}
		}
		if !sawSep || !sawPV {
			t.Fatalf("panel %q missing optimization rows", tb.Title)
		}
	}
}

func TestFig5Shape(t *testing.T) {
	tables := runOne(t, "fig5")
	rows := tables[0].Rows
	if len(rows) != 4 {
		t.Fatalf("want 4 rows, got %d", len(rows))
	}
	// On the permuted range workload the eigen basis must beat the fixed
	// bases clearly (Prop 5 / paper Fig 5).
	for _, row := range rows {
		if !strings.Contains(row[0], "permuted") || !strings.Contains(row[0], "Range") {
			continue
		}
		wav := parse(t, row[1])
		eig := parse(t, row[3])
		if wav < eig*1.2 {
			t.Fatalf("wavelet basis too good on permuted ranges: %v", row)
		}
	}
}

func TestSec35Shape(t *testing.T) {
	tables := runOne(t, "sec35")
	// Weighting an existing basis can only help (the plain basis is in the
	// feasible set), so every improvement ratio must be ≥ ~1.
	for _, row := range tables[0].Rows {
		if parseRatio(t, row[4]) < 0.99 {
			t.Fatalf("L1 weighting hurt in %v", row)
		}
	}
}

func TestSec41Shape(t *testing.T) {
	tables := runOne(t, "sec41")
	for _, row := range tables[0].Rows {
		closed := parse(t, row[4])
		lb := parse(t, row[6])
		if closed < lb*(1-1e-9) || closed > lb*(1+1e-6) {
			t.Fatalf("closed form %g != bound %g in %v", closed, lb, row)
		}
		generic := parse(t, row[2])
		if generic < closed*(1-1e-3) {
			t.Fatalf("generic beat provably optimal closed form: %v", row)
		}
	}
}

func TestOptStratShape(t *testing.T) {
	tables := runOne(t, "optstrat")
	for _, row := range tables[0].Rows {
		lb := parse(t, row[1])
		ref := parse(t, row[2])
		eig := parse(t, row[3])
		if ref < lb*(1-1e-6) {
			t.Fatalf("refined optimum below the Thm 2 bound: %v", row)
		}
		if eig < ref*(1-1e-6) {
			t.Fatalf("eigen below the refined optimum: %v", row)
		}
		// Paper: never witnessed a rate above 1.3x the optimum.
		if eig/ref > 1.3 {
			t.Fatalf("eigen/refined = %g > 1.3: %v", eig/ref, row)
		}
	}
}

func TestAblationRuns(t *testing.T) {
	tables := runOne(t, "ablation")
	if len(tables) != 2 {
		t.Fatalf("want 2 ablation tables, got %d", len(tables))
	}
	// Completion improvement ratios must be ≥ ~1.
	for _, row := range tables[1].Rows {
		if parseRatio(t, row[3]) < 0.99 {
			t.Fatalf("completion hurt in %v", row)
		}
	}
}

func parse(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("bad float cell %q", s)
	}
	return v
}

func parseRatio(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "x"), 64)
	if err != nil {
		t.Fatalf("bad ratio cell %q", s)
	}
	return v
}
