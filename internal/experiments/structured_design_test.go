package experiments

import (
	"testing"

	"adaptivemm/internal/core"
	"adaptivemm/internal/domain"
	"adaptivemm/internal/mm"
	"adaptivemm/internal/workload"
)

// Regression: at full scale the range panels cross the structured design
// threshold, where core.Design returns a matrix-free strategy and
// Result.Strategy is nil. designError must evaluate the operator result
// rather than panicking on the nil dense matrix.
func TestDesignErrorOnStructuredWorkload(t *testing.T) {
	// An explicit factored request forces the branch at test-friendly
	// size; at full scale the range panels cross the planner's structured
	// threshold and designError selects it the same way.
	w := workload.AllRange(domain.MustShape(12, 12))
	e, _, err := designError(w, mm.Privacy{Epsilon: 0.5, Delta: 1e-4},
		core.Options{Pipeline: core.PipelineFactored})
	if err != nil {
		t.Fatal(err)
	}
	if e <= 0 {
		t.Fatalf("expected positive workload error, got %g", e)
	}
}
