package experiments

import (
	"fmt"
	"time"

	"adaptivemm/internal/core"
	"adaptivemm/internal/domain"
	"adaptivemm/internal/mm"
	"adaptivemm/internal/strategy"
	"adaptivemm/internal/workload"
)

// Fig4 regenerates Fig 4: the quality/efficiency trade-off of the
// eigen-query separation and principal-vector optimizations, on all 1-D
// range queries and on all 2-way marginals.
func Fig4(cfg Config) ([]*Table, error) {
	p := cfg.Privacy
	n := fig4Cells(cfg.Scale)

	// Panel (a): all 1-D ranges on [n]; competitor baseline is Wavelet.
	line := domain.MustShape(n)
	rangeW := workload.AllRange(line)
	rangeBase, err := strategyError(rangeW, strategy.Wavelet(line).A, p)
	if err != nil {
		return nil, err
	}
	// Panel (b): all 2-way marginals on a 4-dimensional domain of n cells;
	// competitor baseline is DataCube.
	multi := fig4MarginalShape(cfg.Scale)
	margW := workload.Marginals(multi, 2)
	margBase, err := strategyError(margW, strategy.DataCube(multi, subsetsOfSizeLocal(multi.Dims(), 2)).A, p)
	if err != nil {
		return nil, err
	}

	panels := []struct {
		title    string
		w        *workload.Workload
		base     string
		baseErr  float64
		baseName string
	}{
		{"all 1D ranges on " + line.String(), rangeW, "Wavelet", rangeBase, "Wavelet"},
		{"all 2-way marginals on " + multi.String(), margW, "DataCube", margBase, "DataCube"},
	}

	// Below full scale, pin every method to the interior-point solver so
	// the time comparison is apples-to-apples (the paper's Fig 4 compares
	// optimizations of the same exact solver). At full scale the exact
	// barrier is infeasible — as in the paper, which only estimates it —
	// and the automatic solver choice applies.
	opts := core.Options{Solver: core.SolverBarrier}
	if cfg.Scale == "full" {
		opts = core.Options{}
	}

	var tables []*Table
	for _, panel := range panels {
		t := &Table{
			ID:     "fig4",
			Title:  "Performance optimizations — " + panel.title,
			Header: []string{"Method", "Parameter", "Workload error", "vs bound", "Time"},
		}
		lb, err := mm.LowerBound(panel.w, p)
		if err != nil {
			return nil, err
		}
		cells := panel.w.Cells()

		// Reference points: the competitor and (when affordable) the exact
		// eigen design.
		t.Rows = append(t.Rows, []string{panel.baseName + " (baseline)", "-",
			fmtF(panel.baseErr), fmtRatio(panel.baseErr / lb), "-"})
		if cfg.Scale != "full" {
			e, d, err := designError(panel.w, p, opts)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{"Eigen (exact)", "-", fmtF(e), fmtRatio(e / lb), fmtDur(d)})
		}

		for _, g := range fig4GroupSizes(cells) {
			start := time.Now()
			res, err := core.EigenSeparation(panel.w, g, opts)
			if err != nil {
				return nil, err
			}
			d := time.Since(start)
			e, err := mm.Error(panel.w, res.Op, p)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{"Eigen separation",
				fmt.Sprintf("group=%d", g), fmtF(e), fmtRatio(e / lb), fmtDur(d)})
		}
		for _, frac := range []float64{0.25, 0.13, 0.06, 0.03, 0.02} {
			k := int(frac * float64(cells))
			if k < 1 {
				continue
			}
			start := time.Now()
			res, err := core.PrincipalVectors(panel.w, k, opts)
			if err != nil {
				return nil, err
			}
			d := time.Since(start)
			e, err := mm.Error(panel.w, res.Op, p)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{"Principal vectors",
				fmt.Sprintf("k=%d (%.0f%%)", k, 100*frac), fmtF(e), fmtRatio(e / lb), fmtDur(d)})
		}
		t.Rows = append(t.Rows, []string{"Lower bound", "-", fmtF(lb), "1.00x", "-"})
		t.Notes = append(t.Notes,
			fmt.Sprintf("scale=%s (%d cells; paper uses 8192)", cfg.Scale, cells),
			"paper: both optimizations cut time by two orders of magnitude within ~12% of the bound",
		)
		tables = append(tables, t)
	}
	return tables, nil
}

// fig4GroupSizes returns the group-size sweep {4,16,64,...} capped by n.
func fig4GroupSizes(n int) []int {
	var out []int
	for g := 4; g <= n && g <= 1024; g *= 4 {
		out = append(out, g)
	}
	return out
}

// fig4MarginalShape gives a 4-dimensional domain matching fig4Cells.
func fig4MarginalShape(scale string) domain.Shape {
	switch scale {
	case "small":
		return domain.MustShape(4, 4, 2, 2) // 64
	case "full":
		return domain.MustShape(16, 8, 8, 8) // 8192
	default:
		return domain.MustShape(8, 8, 4, 2) // 512
	}
}
