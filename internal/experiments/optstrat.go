package experiments

import (
	"fmt"
	"math/rand"

	"adaptivemm/internal/core"
	"adaptivemm/internal/domain"
	"adaptivemm/internal/mm"
	"adaptivemm/internal/opt"
	"adaptivemm/internal/workload"
)

// OptStrat approximates the exact strategy selection problem (the paper's
// Problem 1) on small workloads by polishing the Eigen-Design output with
// projected gradient descent on the full strategy matrix. The paper solves
// this exact (but O(n⁸)) program only at toy sizes to certify optimality —
// e.g. Example 4's "no strategy can answer W with error less than 29.18".
// This experiment reproduces such certificates: for each workload it
// reports the Thm 2 bound, the refined near-exact optimum, and the
// Eigen-Design error, locating the algorithm's true gap to optimal (which
// is smaller than its gap to the not-always-achievable bound).
func OptStrat(cfg Config) ([]*Table, error) {
	p := cfg.Privacy
	r := rand.New(rand.NewSource(cfg.Seed))

	entries := []*workload.Workload{
		workload.Fig1(),
		workload.Prefix(16),
		workload.AllRange(domain.MustShape(16)),
		workload.RandomRange(domain.MustShape(16), 24, r),
		workload.Predicate(domain.MustShape(16), 12, r),
	}
	t := &Table{
		ID:     "optstrat",
		Title:  "Near-exact optimal strategies on small workloads (Problem 1)",
		Header: []string{"Workload", "Bound (Thm 2)", "Refined optimum", "EigenDesign", "Eigen/Refined", "Eigen/Bound"},
	}
	for _, w := range entries {
		res, err := core.Design(w, core.Options{})
		if err != nil {
			return nil, err
		}
		eig, err := mm.Error(w, res.Op, p)
		if err != nil {
			return nil, err
		}
		if res.Strategy == nil {
			return nil, fmt.Errorf("experiments: refinement needs a dense strategy for %q", w.Name())
		}
		refined, err := opt.RefineStrategy(w.Gram(), res.Strategy, opt.RefineOptions{Iterations: 800})
		if err != nil {
			return nil, err
		}
		ref, err := mm.Error(w, refined, p)
		if err != nil {
			return nil, err
		}
		lb, err := mm.LowerBound(w, p)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			w.Name(), fmtF(lb), fmtF(ref), fmtF(eig),
			fmtRatio(eig / ref), fmtRatio(eig / lb),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("seed=%d; refinement initialized at the eigen-strategy (convex in AᵀA, so the refined point approximates the global optimum)", cfg.Seed),
		"paper Example 4: eigen 29.79 vs exact optimum 29.18 (ratio 1.021)",
	)
	return []*Table{t}, nil
}
