package experiments

import (
	"fmt"
	"math/rand"

	"adaptivemm/internal/core"
	"adaptivemm/internal/domain"
	"adaptivemm/internal/linalg"
	"adaptivemm/internal/mm"
	"adaptivemm/internal/strategy"
	"adaptivemm/internal/workload"
)

// Sec35 regenerates the ε-differential-privacy results of Sec 3.5: the L1
// variant of the weighting program applied to existing strategies. The
// paper reports that weighting the Wavelet basis improves all-range and
// random-range workloads by 1.1x and 1.5x, and weighting the Fourier basis
// improves low-order marginals by 1.6x; the eigen basis is not universally
// good under L1 because it ignores L1 sensitivity.
func Sec35(cfg Config) ([]*Table, error) {
	eps := cfg.Privacy.Epsilon
	r := rand.New(rand.NewSource(cfg.Seed))
	n := scaleCells(cfg.Scale)
	line := domain.MustShape(n)
	multi := marginalShapes(cfg.Scale)[0]

	t := &Table{
		ID:     "sec35",
		Title:  "ε-differential privacy (Sec 3.5): L1-weighted bases vs plain strategies",
		Header: []string{"Workload", "Basis", "Plain", "L1-weighted", "Improvement"},
	}

	type entry struct {
		label string
		w     *workload.Workload
		basis *linalg.Matrix
		name  string
	}
	lowOrder := workload.Union("1+2-way marginals",
		workload.Marginals(multi, 1), workload.Marginals(multi, 2))
	fourierBasis := fullFourierBasis(multi)
	entries := []entry{
		{"all range " + line.String(), workload.AllRange(line), strategy.Wavelet(line).A, "Wavelet"},
		{"random range " + line.String(), workload.RandomRange(line, n, r), strategy.Wavelet(line).A, "Wavelet"},
		{"low-order marginals " + multi.String(), lowOrder, fourierBasis, "Fourier"},
	}
	for _, e := range entries {
		plain, err := mm.ErrorL1(e.w, e.basis, eps)
		if err != nil {
			return nil, err
		}
		res, err := core.Design(e.w, core.Options{L1: true, DesignBasis: e.basis})
		if err != nil {
			return nil, err
		}
		weighted, err := mm.ErrorL1(e.w, res.Op, eps)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			e.label, e.name, fmtF(plain), fmtF(weighted), fmtRatio(plain / weighted),
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("scale=%s, ε=%g (Laplace mechanism, L1 sensitivity)", cfg.Scale, eps),
		"paper: weighting improves Wavelet 1.1x (all range) and 1.5x (random range), Fourier 1.6x (low-order marginals)",
	)
	return []*Table{t}, nil
}
