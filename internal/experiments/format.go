package experiments

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// Format renders a table in the CLI's text layout: a header line, aligned
// rows, and indented notes. Shared by cmd/ambench and tested directly.
func (t *Table) Format(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "\n== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if _, err := fmt.Fprintln(tw, strings.Join(t.Header, "\t")); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(tw, strings.Repeat("-", 8)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(tw, strings.Join(row, "\t")); err != nil {
			return err
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "  note: %s\n", n); err != nil {
			return err
		}
	}
	return nil
}
