package experiments

import (
	"fmt"
	"math/rand"

	"adaptivemm/internal/core"
	"adaptivemm/internal/domain"
	"adaptivemm/internal/mm"
	"adaptivemm/internal/strategy"
	"adaptivemm/internal/workload"
)

// Fig3a regenerates Fig 3(a): workload (absolute) error of Hierarchical,
// Wavelet and the Eigen-Design strategy, with the Thm 2 lower bound, on
// all-range and random-range workloads over domains of varying
// dimensionality.
func Fig3a(cfg Config) ([]*Table, error) {
	p := cfg.Privacy
	r := rand.New(rand.NewSource(cfg.Seed))
	t := &Table{
		ID:     "fig3a",
		Title:  "Absolute error on range workloads",
		Header: []string{"Shape", "Workload", "Hierarchical", "Wavelet", "EigenDesign", "LowerBound", "Eigen/Bound"},
	}
	for _, shape := range rangeShapes(cfg.Scale) {
		n := shape.Size()
		workloads := []*workload.Workload{
			workload.AllRange(shape),
			workload.RandomRange(shape, n, r),
		}
		labels := []string{"all range", "random range"}
		for wi, w := range workloads {
			hier, err := strategyError(w, strategy.Hierarchical(shape, 2).A, p)
			if err != nil {
				return nil, err
			}
			wav, err := strategyError(w, strategy.Wavelet(shape).A, p)
			if err != nil {
				return nil, err
			}
			eig, _, err := designError(w, p, core.Options{})
			if err != nil {
				return nil, err
			}
			lb, err := mm.LowerBound(w, p)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				shape.String(), labels[wi],
				fmtF(hier), fmtF(wav), fmtF(eig), fmtF(lb), fmtRatio(eig / lb),
			})
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("scale=%s; paper runs all shapes at 2048 cells (use -scale full)", cfg.Scale),
		"paper: eigen reduces error 1.2–2.1x vs best competitor and stays within 1.3x of the bound",
	)
	return []*Table{t}, nil
}

// Fig3c regenerates Fig 3(c): absolute error of Fourier, DataCube and the
// Eigen-Design strategy on 2-way-marginal and random-marginal workloads.
func Fig3c(cfg Config) ([]*Table, error) {
	p := cfg.Privacy
	r := rand.New(rand.NewSource(cfg.Seed))
	t := &Table{
		ID:     "fig3c",
		Title:  "Absolute error on marginal workloads",
		Header: []string{"Shape", "Workload", "Fourier", "DataCube", "EigenDesign", "LowerBound", "Eigen/Bound"},
	}
	for _, shape := range marginalShapes(cfg.Scale) {
		dims := shape.Dims()
		// 2-way marginals (all pairs).
		twoWay := workload.Marginals(shape, 2)
		var pairs [][]int
		for a := 0; a < dims; a++ {
			for b := a + 1; b < dims; b++ {
				pairs = append(pairs, []int{a, b})
			}
		}
		// Random marginals per Ding et al.'s sampling.
		randW, randSubsets := workload.RandomMarginals(shape, 2*dims, r)

		type entry struct {
			label   string
			w       *workload.Workload
			subsets [][]int
		}
		for _, e := range []entry{
			{"2-way marginal", twoWay, pairs},
			{"random marginal", randW, randSubsets},
		} {
			four, err := strategyError(e.w, strategy.Fourier(shape, e.subsets).A, p)
			if err != nil {
				return nil, err
			}
			dc, err := strategyError(e.w, strategy.DataCube(shape, e.subsets).A, p)
			if err != nil {
				return nil, err
			}
			eig, _, err := designError(e.w, p, core.Options{})
			if err != nil {
				return nil, err
			}
			lb, err := mm.LowerBound(e.w, p)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				shape.String(), e.label,
				fmtF(four), fmtF(dc), fmtF(eig), fmtF(lb), fmtRatio(eig / lb),
			})
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("scale=%s", cfg.Scale),
		"paper: eigen reduces error 1.3–2.2x vs best competitor and matches the bound on marginals",
	)
	return []*Table{t}, nil
}

// rangeEvalWorkload returns an explicit workload for relative-error
// evaluation of "all range": the full set when small enough, otherwise a
// seeded sample of ranges (the estimator of the average relative error).
func rangeEvalWorkload(shape domain.Shape, r *rand.Rand) (*workload.Workload, bool) {
	w := workload.AllRange(shape)
	if w.Explicit() {
		return w, false
	}
	return workload.RandomRange(shape, 2000, r), true
}
