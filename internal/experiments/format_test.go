package experiments

import (
	"strings"
	"testing"
)

func TestFormatGolden(t *testing.T) {
	tb := &Table{
		ID:     "demo",
		Title:  "A demo table",
		Header: []string{"Name", "Value"},
		Rows: [][]string{
			{"alpha", "1.5"},
			{"beta", "2"},
		},
		Notes: []string{"first note"},
	}
	var sb strings.Builder
	if err := tb.Format(&sb); err != nil {
		t.Fatal(err)
	}
	// The separator line splits tabwriter's alignment blocks, so the header
	// pads only to its own width.
	want := "\n== demo: A demo table ==\n" +
		"Name  Value\n" +
		"--------\n" +
		"alpha  1.5\n" +
		"beta   2\n" +
		"  note: first note\n"
	if sb.String() != want {
		t.Fatalf("Format output:\n%q\nwant:\n%q", sb.String(), want)
	}
}

func TestFormatEveryExperimentRenders(t *testing.T) {
	// Formatting must succeed for every experiment's real output.
	for _, id := range []string{"table1", "example4", "branching"} {
		tables := runOne(t, id)
		for _, tb := range tables {
			var sb strings.Builder
			if err := tb.Format(&sb); err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if !strings.Contains(sb.String(), tb.ID) {
				t.Fatalf("%s: output missing id", id)
			}
		}
	}
}

func TestBranchingShape(t *testing.T) {
	tables := runOne(t, "branching")
	rows := tables[0].Rows
	// Eigen must be the best non-bound row.
	var eig, bestOther float64
	for _, row := range rows {
		v := parse(t, row[1])
		switch {
		case row[0] == "EigenDesign":
			eig = v
		case row[0] == "Lower bound":
		default:
			if bestOther == 0 || v < bestOther {
				bestOther = v
			}
		}
	}
	if eig == 0 || bestOther == 0 {
		t.Fatal("missing rows")
	}
	if eig > bestOther*(1+1e-9) {
		t.Fatalf("a fixed tree beat the adaptive strategy: %g vs %g", bestOther, eig)
	}
}
