package experiments

import (
	"fmt"
	"time"

	"adaptivemm/internal/core"
	"adaptivemm/internal/domain"
	"adaptivemm/internal/linalg"
	"adaptivemm/internal/mm"
	"adaptivemm/internal/planner"
	"adaptivemm/internal/workload"
)

// rangeShapes returns the Fig 3(a) domain shapes for a scale. At full scale
// these are the paper's five 2048-cell configurations; smaller scales keep
// the same structure (1-D, 2-D, 3-D, 4-D, all-binary) on fewer cells.
func rangeShapes(scale string) []domain.Shape {
	switch scale {
	case "small":
		return []domain.Shape{
			domain.MustShape(64),
			domain.MustShape(16, 4),
			domain.MustShape(4, 4, 4),
			binaryShape(6),
		}
	case "full":
		return []domain.Shape{
			domain.MustShape(2048),
			domain.MustShape(64, 32),
			domain.MustShape(16, 16, 8),
			domain.MustShape(8, 8, 8, 4),
			binaryShape(11),
		}
	default: // medium
		return []domain.Shape{
			domain.MustShape(256),
			domain.MustShape(32, 8),
			domain.MustShape(8, 8, 4),
			domain.MustShape(4, 4, 4, 4),
			binaryShape(8),
		}
	}
}

// marginalShapes returns the Fig 3(c) shapes (multi-attribute only).
func marginalShapes(scale string) []domain.Shape {
	switch scale {
	case "small":
		return []domain.Shape{
			domain.MustShape(4, 4, 2),
			binaryShape(5),
		}
	case "full":
		return []domain.Shape{
			domain.MustShape(16, 16, 8),
			domain.MustShape(8, 8, 8, 4),
			binaryShape(11),
		}
	default:
		return []domain.Shape{
			domain.MustShape(8, 8, 4),
			domain.MustShape(4, 4, 4, 2),
			binaryShape(8),
		}
	}
}

// scaleCells returns the single-domain cell count used by Table 2 and the
// 1-D experiments.
func scaleCells(scale string) int {
	switch scale {
	case "small":
		return 64
	case "full":
		return 2048
	default:
		return 256
	}
}

// fig4Cells returns the domain size for the Fig 4 performance experiment
// (the paper uses 8192).
func fig4Cells(scale string) int {
	switch scale {
	case "small":
		return 64
	case "full":
		return 8192
	default:
		return 512
	}
}

func binaryShape(k int) domain.Shape {
	dims := make([]int, k)
	for i := range dims {
		dims[i] = 2
	}
	return domain.MustShape(dims...)
}

// designError runs the Eigen-Design algorithm and reports the resulting
// workload error along with the design wall time. A zero Pipeline means
// "auto" here: plain L2 eigen runs apply the planner's
// structured-threshold admission rule, so full-scale range panels take
// the factored pipeline exactly as the planner would. An experiment that
// must measure the dense pipeline on a factored-eligible workload should
// call core.Design directly, where PipelineDense is honored literally.
func designError(w *workload.Workload, p mm.Privacy, o core.Options) (float64, time.Duration, error) {
	if o.Pipeline == core.PipelineDense && !o.L1 && o.DesignBasis == nil {
		o.Pipeline = planner.PipelineFor(w)
	}
	start := time.Now()
	res, err := core.Design(w, o)
	if err != nil {
		return 0, 0, err
	}
	dur := time.Since(start)
	e, err := mm.Error(w, res.Op, p)
	return e, dur, err
}

// strategyError evaluates a fixed strategy matrix, returning +Inf-like
// failure as an error.
func strategyError(w *workload.Workload, a *linalg.Matrix, p mm.Privacy) (float64, error) {
	return mm.Error(w, a, p)
}

// designStrategy runs Design and returns the strategy matrix (for reuse
// across privacy settings: strategy selection is privacy-independent).
func designStrategy(w *workload.Workload, o core.Options) (*linalg.Matrix, error) {
	res, err := core.Design(w, o)
	if err != nil {
		return nil, err
	}
	if res.Strategy == nil {
		return nil, fmt.Errorf("experiments: design of %q produced a matrix-free strategy; this experiment needs dense rows", w.Name())
	}
	return res.Strategy, nil
}

// epsSweep is the ε axis of Figs 3(b,d).
func epsSweep(scale string) []float64 {
	if scale == "small" {
		return []float64{0.5, 2.5}
	}
	return []float64{0.1, 0.5, 1.0, 2.5}
}
