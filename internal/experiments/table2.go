package experiments

import (
	"fmt"
	"math/rand"

	"adaptivemm/internal/core"
	"adaptivemm/internal/domain"
	"adaptivemm/internal/linalg"
	"adaptivemm/internal/mm"
	"adaptivemm/internal/strategy"
	"adaptivemm/internal/workload"
)

// namedStrategy pairs a competitor label with its matrix.
type namedStrategy struct {
	name string
	a    *linalg.Matrix
}

// Table2 regenerates the paper's Table 2: the Eigen-Design error ratio
// against the best and worst applicable competitor, and against the
// theoretical bound, on alternative workloads (permuted ranges, range
// marginals, CDF, predicates).
func Table2(cfg Config) ([]*Table, error) {
	p := cfg.Privacy
	r := rand.New(rand.NewSource(cfg.Seed))
	n := scaleCells(cfg.Scale)
	line := domain.MustShape(n)
	multi := marginalShapes(cfg.Scale)[0]

	oneWay := subsetsOfSizeLocal(multi.Dims(), 1)
	twoWay := subsetsOfSizeLocal(multi.Dims(), 2)

	type entry struct {
		label       string
		w           *workload.Workload
		competitors []namedStrategy
	}
	perm := r.Perm(n)
	entries := []entry{
		{
			label: "1D Range (Permuted)",
			w:     workload.AllRange(line).PermuteCells(perm, "permuted 1D range"),
			competitors: []namedStrategy{
				{"Wavelet", strategy.Wavelet(line).A},
				{"Hierarchical", strategy.Hierarchical(line, 2).A},
			},
		},
		{
			label: "1-Way Range Marginal",
			w:     workload.RangeMarginals(multi, 1),
			competitors: []namedStrategy{
				{"Fourier", strategy.Fourier(multi, oneWay).A},
				{"DataCube", strategy.DataCube(multi, oneWay).A},
				{"Wavelet", strategy.Wavelet(multi).A},
				{"Hierarchical", strategy.Hierarchical(multi, 2).A},
			},
		},
		{
			label: "2-Way Range Marginal",
			w:     workload.RangeMarginals(multi, 2),
			competitors: []namedStrategy{
				{"Fourier", strategy.Fourier(multi, twoWay).A},
				{"DataCube", strategy.DataCube(multi, twoWay).A},
				{"Wavelet", strategy.Wavelet(multi).A},
				{"Hierarchical", strategy.Hierarchical(multi, 2).A},
			},
		},
		{
			label: "1D CDF",
			w:     workload.Prefix(n),
			competitors: []namedStrategy{
				{"Wavelet", strategy.Wavelet(line).A},
				{"Hierarchical", strategy.Hierarchical(line, 2).A},
			},
		},
		{
			label: "Predicate",
			w:     workload.Predicate(line, n/2, r),
			competitors: []namedStrategy{
				{"Wavelet", strategy.Wavelet(line).A},
				{"Hierarchical", strategy.Hierarchical(line, 2).A},
				{"Fourier", strategy.Fourier(line, [][]int{{0}}).A},
			},
		},
	}

	t := &Table{
		ID:     "table2",
		Title:  "Alternative workloads: error reduction of Eigen-Design vs competitors",
		Header: []string{"Workload", "Eigen error", "Best ratio", "Worst ratio", "Bound ratio", "Best/Worst competitor"},
	}
	for _, e := range entries {
		eig, _, err := designError(e.w, p, core.Options{})
		if err != nil {
			return nil, err
		}
		lb, err := mm.LowerBound(e.w, p)
		if err != nil {
			return nil, err
		}
		bestName, worstName := "", ""
		best, worst := 0.0, 0.0
		for _, c := range e.competitors {
			ce, err := mm.ErrorChecked(e.w, c.a, p)
			if err == mm.ErrNotSupported {
				continue
			}
			if err != nil {
				return nil, err
			}
			if bestName == "" || ce < best {
				best, bestName = ce, c.name
			}
			if worstName == "" || ce > worst {
				worst, worstName = ce, c.name
			}
		}
		if bestName == "" {
			return nil, fmt.Errorf("experiments: no applicable competitor for %s", e.label)
		}
		t.Rows = append(t.Rows, []string{
			e.label, fmtF(eig),
			fmtRatio(best / eig), fmtRatio(worst / eig), fmtRatio(eig / lb),
			bestName + " / " + worstName,
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("scale=%s (%d cells; multi-dim %s)", cfg.Scale, n, multi),
		"ratios > 1 mean Eigen-Design is better; paper reports up to 13x on permuted ranges",
	)
	return []*Table{t}, nil
}

func subsetsOfSizeLocal(n, k int) [][]int {
	var out [][]int
	var rec func(start int, cur []int)
	rec = func(start int, cur []int) {
		if len(cur) == k {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := start; i < n; i++ {
			rec(i+1, append(cur, i))
		}
	}
	rec(0, nil)
	return out
}
