package experiments

import (
	"adaptivemm/internal/core"
	"adaptivemm/internal/domain"
	"adaptivemm/internal/linalg"
	"adaptivemm/internal/mm"
	"adaptivemm/internal/strategy"
	"adaptivemm/internal/workload"
)

// Table1 reports the dataset dimensions and sizes (the paper's Table 1).
func Table1(cfg Config) ([]*Table, error) {
	t := &Table{
		ID:     "table1",
		Title:  "Dataset dimensions and sizes (synthetic stand-ins, see DESIGN.md)",
		Header: []string{"Dataset", "Dimension", "# Tuples"},
		Rows: [][]string{
			{"US Census (synthetic)", "8×16×16", "15M"},
			{"Adult (synthetic)", "8×8×16×2", "33K"},
		},
		Notes: []string{
			"Original IPUMS/UCI data replaced by seeded synthetic histograms with matching shape, size and skew.",
		},
	}
	return []*Table{t}, nil
}

// Example4 reproduces Example 4 / Fig 2: the error of answering the Fig 1
// workload with the identity, wavelet and adaptively designed strategies,
// against the optimal-error lower bound.
func Example4(cfg Config) ([]*Table, error) {
	w := workload.Fig1()
	p := cfg.Privacy

	idErr, err := strategyError(w, linalg.Identity(8), p)
	if err != nil {
		return nil, err
	}
	// The paper's Fig 2 wavelet treats the 8 cells as one flat dimension.
	wavErr, err := strategyError(w, strategy.Wavelet(domain.MustShape(8)).A, p)
	if err != nil {
		return nil, err
	}
	selfErr, err := strategyError(w, w.Matrix(), p)
	if err != nil {
		return nil, err
	}
	adaErr, _, err := designError(w, p, core.Options{})
	if err != nil {
		return nil, err
	}
	lb, err := mm.LowerBound(w, p)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:     "example4",
		Title:  "Strategies for the Fig 1 workload (paper: 47.78 / 45.36 / 34.62 / 29.79 / ≥29.18)",
		Header: []string{"Strategy", "Workload error", "vs lower bound"},
		Rows: [][]string{
			{"Workload itself", fmtF(selfErr), fmtRatio(selfErr / lb)},
			{"Identity", fmtF(idErr), fmtRatio(idErr / lb)},
			{"Wavelet", fmtF(wavErr), fmtRatio(wavErr / lb)},
			{"Eigen-Design (adaptive)", fmtF(adaErr), fmtRatio(adaErr / lb)},
			{"Lower bound (Thm 2)", fmtF(lb), "1.00x"},
		},
		Notes: []string{
			"Absolute values differ from the paper by one global constant (choice of P(ε,δ) and per-query averaging); all ratios are comparable.",
			"The Fig 1 workload has rank 4, so 'workload itself' uses least-squares inference over its row space (the paper's 47.78 idealizes it as full rank).",
		},
	}
	return []*Table{t}, nil
}
