package experiments

import (
	"fmt"
	"math/rand"

	"adaptivemm/internal/core"
	"adaptivemm/internal/domain"
	"adaptivemm/internal/linalg"
	"adaptivemm/internal/mm"
	"adaptivemm/internal/strategy"
	"adaptivemm/internal/workload"
)

// Fig5 regenerates Fig 5: the weighting program of Program 1 run with
// three different design sets — the eigen-queries, the Wavelet matrix and
// the Fourier matrix — on structured workloads and on the same workloads
// with permuted cell conditions. Only the eigen-queries are representation
// independent (Prop 5); the fixed bases degrade badly under permutation.
func Fig5(cfg Config) ([]*Table, error) {
	p := cfg.Privacy
	r := rand.New(rand.NewSource(cfg.Seed))

	n := scaleCells(cfg.Scale)
	line := domain.MustShape(n)
	twoD := fig5TwoDimShape(cfg.Scale)

	type entry struct {
		label string
		w     *workload.Workload
		shape domain.Shape
	}
	rangeW := workload.AllRange(line)
	margW := workload.AllMarginals(twoD)
	entries := []entry{
		{"1D Range on " + line.String(), rangeW, line},
		{"1D Range permuted", rangeW.PermuteCells(r.Perm(n), "permuted range"), line},
		{"Marginals on " + twoD.String(), margW, twoD},
		{"Marginals permuted", margW.PermuteCells(r.Perm(twoD.Size()), "permuted marginals"), twoD},
	}

	t := &Table{
		ID:     "fig5",
		Title:  "Choice of design queries (weights optimized for each basis)",
		Header: []string{"Workload", "Wavelet basis", "Fourier basis", "Eigen basis", "LowerBound"},
	}
	for _, e := range entries {
		wavBasis := strategy.Wavelet(e.shape).A
		fourBasis := fullFourierBasis(e.shape)
		row := []string{e.label}
		for _, basis := range []*linalg.Matrix{wavBasis, fourBasis} {
			res, err := core.Design(e.w, core.Options{DesignBasis: basis})
			if err != nil {
				return nil, err
			}
			err2 := error(nil)
			val, err2 := mm.Error(e.w, res.Op, p)
			if err2 != nil {
				return nil, err2
			}
			row = append(row, fmtF(val))
		}
		eig, _, err := designError(e.w, p, core.Options{})
		if err != nil {
			return nil, err
		}
		lb, err := mm.LowerBound(e.w, p)
		if err != nil {
			return nil, err
		}
		row = append(row, fmtF(eig), fmtF(lb))
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("scale=%s", cfg.Scale),
		"paper: fixed bases lose >4x on permuted ranges while the eigen basis is unchanged (Prop 5)",
	)
	return []*Table{t}, nil
}

// fullFourierBasis returns the complete orthonormal marginal basis over
// the shape (the closure of the full attribute set).
func fullFourierBasis(shape domain.Shape) *linalg.Matrix {
	full := make([]int, shape.Dims())
	for i := range full {
		full[i] = i
	}
	return strategy.Fourier(shape, [][]int{full}).A
}

// fig5TwoDimShape mirrors the paper's [64·32] marginal domain.
func fig5TwoDimShape(scale string) domain.Shape {
	switch scale {
	case "small":
		return domain.MustShape(8, 8)
	case "full":
		return domain.MustShape(64, 32)
	default:
		return domain.MustShape(16, 16)
	}
}
