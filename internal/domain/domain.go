// Package domain models the multi-dimensional cell domains over which
// workloads of linear counting queries are defined (Sec 2.1 of the paper).
// A data vector x has one cell per element of the cross product of the
// per-attribute bucketings; Shape records the number of buckets per
// attribute and provides the flat-index ↔ coordinate maps used by every
// workload and strategy builder.
package domain

import (
	"fmt"
	"strings"
)

// Shape is the list of bucket counts, one per attribute. For example the
// paper's US Census domain is Shape{8, 16, 16} (age × occupation × income)
// with 2048 cells.
type Shape []int

// NewShape validates and returns a shape. Every dimension must be positive.
func NewShape(dims ...int) (Shape, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("domain: empty shape")
	}
	for i, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("domain: dimension %d has non-positive size %d", i, d)
		}
	}
	return Shape(append([]int(nil), dims...)), nil
}

// MustShape is NewShape that panics on error; for use with constant shapes
// in tests and examples.
func MustShape(dims ...int) Shape {
	s, err := NewShape(dims...)
	if err != nil {
		panic(err)
	}
	return s
}

// Size returns the total number of cells (the product of the dimensions).
func (s Shape) Size() int {
	n := 1
	for _, d := range s {
		n *= d
	}
	return n
}

// Dims returns the number of attributes.
func (s Shape) Dims() int { return len(s) }

// Strides returns the row-major strides: cell index = Σ coords[i]*strides[i].
func (s Shape) Strides() []int {
	st := make([]int, len(s))
	acc := 1
	for i := len(s) - 1; i >= 0; i-- {
		st[i] = acc
		acc *= s[i]
	}
	return st
}

// Index converts multi-dimensional coordinates to a flat cell index.
// It panics if coords has the wrong length or is out of range.
func (s Shape) Index(coords []int) int {
	if len(coords) != len(s) {
		panic(fmt.Sprintf("domain: %d coords for %d dims", len(coords), len(s)))
	}
	idx := 0
	for i, c := range coords {
		if c < 0 || c >= s[i] {
			panic(fmt.Sprintf("domain: coord %d = %d out of [0,%d)", i, c, s[i]))
		}
		idx = idx*s[i] + c
	}
	return idx
}

// Coords converts a flat cell index to multi-dimensional coordinates.
// It panics if idx is out of range.
func (s Shape) Coords(idx int) []int {
	if idx < 0 || idx >= s.Size() {
		panic(fmt.Sprintf("domain: index %d out of [0,%d)", idx, s.Size()))
	}
	coords := make([]int, len(s))
	for i := len(s) - 1; i >= 0; i-- {
		coords[i] = idx % s[i]
		idx /= s[i]
	}
	return coords
}

// Clone returns a copy of the shape.
func (s Shape) Clone() Shape { return append(Shape(nil), s...) }

// Equal reports whether two shapes are identical.
func (s Shape) Equal(o Shape) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// String renders the shape in the paper's bracket notation, e.g. [8·16·16].
func (s Shape) String() string {
	parts := make([]string, len(s))
	for i, d := range s {
		parts[i] = fmt.Sprint(d)
	}
	return "[" + strings.Join(parts, "·") + "]"
}

// Range is a half-open multi-dimensional box [Lo[i], Hi[i]] (inclusive on
// both ends, following the paper's range-query convention).
type Range struct {
	Lo, Hi []int
}

// NumRanges returns the number of axis-aligned ranges Π dᵢ(dᵢ+1)/2, i.e.
// the row count of the all-range workload.
func (s Shape) NumRanges() int {
	n := 1
	for _, d := range s {
		n *= d * (d + 1) / 2
	}
	return n
}

// Contains reports whether the cell with the given flat index lies in r.
func (r Range) Contains(s Shape, idx int) bool {
	coords := s.Coords(idx)
	for i, c := range coords {
		if c < r.Lo[i] || c > r.Hi[i] {
			return false
		}
	}
	return true
}

// CellCount returns the number of cells covered by r.
func (r Range) CellCount() int {
	n := 1
	for i := range r.Lo {
		n *= r.Hi[i] - r.Lo[i] + 1
	}
	return n
}
