package domain

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewShapeValidation(t *testing.T) {
	if _, err := NewShape(); err == nil {
		t.Fatal("empty shape accepted")
	}
	if _, err := NewShape(4, 0); err == nil {
		t.Fatal("zero dimension accepted")
	}
	if _, err := NewShape(4, -1); err == nil {
		t.Fatal("negative dimension accepted")
	}
	s, err := NewShape(8, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != 2048 {
		t.Fatalf("Size = %d, want 2048", s.Size())
	}
	if s.Dims() != 3 {
		t.Fatalf("Dims = %d", s.Dims())
	}
}

func TestMustShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustShape did not panic")
		}
	}()
	MustShape(0)
}

func TestStrides(t *testing.T) {
	s := MustShape(2, 3, 4)
	st := s.Strides()
	want := []int{12, 4, 1}
	for i := range want {
		if st[i] != want[i] {
			t.Fatalf("Strides = %v, want %v", st, want)
		}
	}
}

func TestIndexCoordsRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dims := make([]int, 1+r.Intn(4))
		for i := range dims {
			dims[i] = 1 + r.Intn(6)
		}
		s := MustShape(dims...)
		idx := r.Intn(s.Size())
		return s.Index(s.Coords(idx)) == idx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIndexMatchesStrides(t *testing.T) {
	s := MustShape(3, 4, 5)
	st := s.Strides()
	for idx := 0; idx < s.Size(); idx++ {
		c := s.Coords(idx)
		sum := 0
		for i := range c {
			sum += c[i] * st[i]
		}
		if sum != idx {
			t.Fatalf("strides disagree at %d: coords %v", idx, c)
		}
	}
}

func TestIndexPanics(t *testing.T) {
	s := MustShape(2, 2)
	for _, bad := range [][]int{{0}, {2, 0}, {-1, 0}, {0, 0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Index(%v) did not panic", bad)
				}
			}()
			s.Index(bad)
		}()
	}
}

func TestCoordsPanics(t *testing.T) {
	s := MustShape(2, 2)
	for _, bad := range []int{-1, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Coords(%d) did not panic", bad)
				}
			}()
			s.Coords(bad)
		}()
	}
}

func TestShapeEqualAndClone(t *testing.T) {
	a := MustShape(2, 3)
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal")
	}
	b[0] = 5
	if a.Equal(b) || a[0] != 2 {
		t.Fatal("clone aliases original")
	}
	if a.Equal(MustShape(2)) || a.Equal(MustShape(3, 2)) {
		t.Fatal("Equal too permissive")
	}
}

func TestShapeString(t *testing.T) {
	if s := MustShape(8, 16, 16).String(); s != "[8·16·16]" {
		t.Fatalf("String = %q", s)
	}
}

func TestNumRanges(t *testing.T) {
	if got := MustShape(4).NumRanges(); got != 10 {
		t.Fatalf("NumRanges [4] = %d, want 10", got)
	}
	if got := MustShape(2, 3).NumRanges(); got != 3*6 {
		t.Fatalf("NumRanges [2,3] = %d, want 18", got)
	}
}

func TestRangeContainsAndCellCount(t *testing.T) {
	s := MustShape(4, 4)
	r := Range{Lo: []int{1, 2}, Hi: []int{2, 3}}
	if r.CellCount() != 4 {
		t.Fatalf("CellCount = %d", r.CellCount())
	}
	inside := s.Index([]int{2, 3})
	outside := s.Index([]int{0, 0})
	if !r.Contains(s, inside) {
		t.Fatal("Contains missed inside cell")
	}
	if r.Contains(s, outside) {
		t.Fatal("Contains accepted outside cell")
	}
	// Count cells by brute force and compare.
	count := 0
	for idx := 0; idx < s.Size(); idx++ {
		if r.Contains(s, idx) {
			count++
		}
	}
	if count != r.CellCount() {
		t.Fatalf("brute force count %d != CellCount %d", count, r.CellCount())
	}
}
