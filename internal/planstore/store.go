// Package planstore is the durable plan store: a versioned,
// content-addressed on-disk home for planner.Plan artifacts, so the
// expensive step of the adaptive mechanism — designing a strategy — is
// paid once per workload, not once per process lifetime. A server
// restart rehydrates its strategy cache from the store instead of
// triggering a recompute storm, and a plan designed offline (amdesign
// -save) can be shipped into a fleet's store directory.
//
// Layout. Each plan is one file named by the SHA-256 of its cache key
// (<hex[:24]>.plan): the key — the canonical (workload spec, hints
// fingerprint) pair the server's strategy cache uses — addresses the
// content, so re-persisting the same design overwrites its own entry and
// two servers sharing a directory converge on one file per workload.
// Writes go through a temp file and an atomic rename: a crash mid-write
// leaves the previous entry intact, never a torn file. The per-generator
// design-throughput calibration lives beside the plans in
// calibration.amc.
//
// Envelope. Every file is framed as
//
//	magic | format version | library version | meta | payload | SHA-256
//
// and every plan decode verifies the checksum first. Entries whose
// magic, format version or checksum do not match are *skipped with a
// logged reason* (LoadAll) or refused (Load) — an incompatible or
// corrupt plan is never mis-loaded into a serving cache. (List parses
// only the meta header, without hashing payloads.) The library version
// is advisory: it is reported in listings so operators can see which
// build wrote an entry, but a matching format version is what gates
// decoding.
package planstore

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"adaptivemm/internal/binenc"
	"adaptivemm/internal/planner"
)

const (
	// planMagic frames plan entries; calMagic the calibration record.
	planMagic = "AMPS"
	calMagic  = "AMPC"

	// FormatVersion is the store wire-format version. Entries written
	// under a different version are skipped, never decoded: bump it on
	// any incompatible codec change.
	FormatVersion = 1

	// LibraryVersion tags entries with the build that wrote them. It is
	// recorded and reported, not matched — the format version is the
	// compatibility gate.
	LibraryVersion = "adaptivemm/0.5"

	// planExt is the plan-entry file suffix.
	planExt = ".plan"
	// calFile is the calibration record's file name.
	calFile = "calibration.amc"

	// maxEntryBytes bounds how large a plan file the store will read back
	// (the biggest legitimate artifact, a 1024-cell dense pseudo-inverse
	// plus strategy, is ~25 MB).
	maxEntryBytes = 256 << 20
)

// MaxEntryBytes is the store's entry-size bound, exported so plan
// fetchers (a fleet worker pulling from its coordinator) can cap their
// reads identically.
const MaxEntryBytes = maxEntryBytes

// maxEvictedRecords bounds the evicted-id memory; past it, the oldest
// records are forgotten (their IDs then report a plain not-found).
const maxEvictedRecords = 4096

// Meta describes one stored plan without decoding its operators.
type Meta struct {
	// ID is the entry's content address (hex SHA-256 prefix of the key)
	// — the handle DELETE /plans/{id} takes.
	ID string `json:"id"`
	// Key is the canonical (workload spec, hints fingerprint) cache key.
	Key string `json:"key"`
	// Generator names the plan's winning generator.
	Generator string `json:"generator"`
	// Workload is the planned workload's name.
	Workload string `json:"workload"`
	// Queries and Cells are the workload dimensions.
	Queries int `json:"queries"`
	Cells   int `json:"cells"`
	// Shards is the shard count of a sharded plan, 0 otherwise.
	Shards int `json:"shards,omitempty"`
	// SizeBytes is the entry's file size.
	SizeBytes int64 `json:"sizeBytes"`
	// SavedAt is when the entry was written.
	SavedAt time.Time `json:"savedAt"`
	// LibVersion is the library build that wrote the entry.
	LibVersion string `json:"libVersion"`
}

// EntryID returns the content address a key maps to.
func EntryID(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:12])
}

// CanonicalKey is the store (and server strategy-cache) key for a
// spec-described workload designed under a hint fingerprint. Keeping the
// construction here means amdesign -save writes entries a server with
// the same spec finds on startup.
func CanonicalKey(spec string, seed int64, fingerprint string) string {
	if seed == 0 {
		seed = 1
	}
	return fmt.Sprintf("%s|seed=%d|%s", strings.ToLower(strings.TrimSpace(spec)), seed, fingerprint)
}

// Store is a plan store rooted at one directory. It is safe for
// concurrent use; cross-process coordination relies on atomic renames
// (last writer wins per entry).
type Store struct {
	dir string
	mu  sync.Mutex

	// Quota state (SetQuota): byte budget over plan entries (0 =
	// unlimited), last-served time per entry id, and the eviction logger.
	// Entries never Touched fall back to their file mtime, so a fresh
	// process still evicts oldest-first.
	quota  int64
	served map[string]time.Time
	logf   func(format string, args ...any)

	// evicted remembers quota evictions (bounded), so a reader racing
	// the GC — List saw the entry, the quota removed it, then the read
	// lands — can be told the entry was evicted rather than left to
	// treat the miss as store corruption. Re-persisting an entry clears
	// its record.
	evicted      map[string]time.Time
	evictedOrder []string
}

// Open ensures the directory exists and returns the store.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("planstore: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("planstore: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Put persists a plan under its cache key, overwriting any previous
// entry for the same key. With a quota installed (SetQuota), the write
// counts as serving the entry and may evict older entries to make room.
func (s *Store) Put(key string, plan *planner.Plan) (Meta, error) {
	blob, meta, err := EncodeEntry(key, plan, time.Now())
	if err != nil {
		return Meta{}, err
	}
	path := filepath.Join(s.dir, meta.ID+planExt)
	if err := s.writeAtomic(path, blob); err != nil {
		return Meta{}, err
	}
	meta.SizeBytes = int64(len(blob))
	s.clearEvicted(meta.ID)
	s.Touch(meta.ID)
	s.enforceQuota()
	return meta, nil
}

// SetQuota installs a byte budget over the store's plan entries and
// enforces it immediately; 0 disables the quota. While a quota is set,
// every Put that pushes the entries' total size past the budget evicts
// least-recently-served entries (most recent of Touch time and file
// mtime) until the store fits again. The calibration record is exempt.
// logf, when non-nil, receives one line per eviction.
func (s *Store) SetQuota(quota int64, logf func(format string, args ...any)) {
	s.mu.Lock()
	s.quota = quota
	s.logf = logf
	s.mu.Unlock()
	s.enforceQuota()
}

// Touch records that an entry was just served — a design cache hit, a
// rehydration, or its own Put — moving it to the recently-served end of
// the quota eviction order.
func (s *Store) Touch(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.served == nil {
		s.served = map[string]time.Time{}
	}
	s.served[id] = time.Now()
}

// enforceQuota deletes least-recently-served plan entries until the
// store's total plan bytes fit the quota. Directory-scan or removal
// failures are logged and skipped — quota enforcement is advisory
// housekeeping, never a reason to fail a Put.
func (s *Store) enforceQuota() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.quota <= 0 {
		return
	}
	logf := s.logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		logf("planstore: quota scan: %v", err)
		return
	}
	type cand struct {
		id   string
		size int64
		last time.Time
	}
	var cands []cand
	var total int64
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, planExt) {
			continue
		}
		id := strings.TrimSuffix(name, planExt)
		if !validID(id) {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			continue
		}
		last := fi.ModTime()
		if t, ok := s.served[id]; ok && t.After(last) {
			last = t
		}
		total += fi.Size()
		cands = append(cands, cand{id: id, size: fi.Size(), last: last})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].last.Before(cands[j].last) })
	for _, c := range cands {
		if total <= s.quota {
			break
		}
		if err := os.Remove(filepath.Join(s.dir, c.id+planExt)); err != nil {
			logf("planstore: quota eviction of %s: %v", c.id, err)
			continue
		}
		total -= c.size
		delete(s.served, c.id)
		s.recordEvicted(c.id)
		logf("planstore: quota eviction: removed %s (%d bytes, last served %s); plans exceeded the %d-byte quota",
			c.id, c.size, c.last.UTC().Format(time.RFC3339), s.quota)
	}
}

// recordEvicted remembers a quota eviction; caller holds s.mu.
func (s *Store) recordEvicted(id string) {
	if s.evicted == nil {
		s.evicted = map[string]time.Time{}
	}
	if _, ok := s.evicted[id]; !ok {
		s.evictedOrder = append(s.evictedOrder, id)
	}
	s.evicted[id] = time.Now()
	for len(s.evictedOrder) > maxEvictedRecords {
		delete(s.evicted, s.evictedOrder[0])
		s.evictedOrder = s.evictedOrder[1:]
	}
}

// clearEvicted drops an id's eviction record after it is re-persisted.
func (s *Store) clearEvicted(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.evicted[id]; !ok {
		return
	}
	delete(s.evicted, id)
	for i, e := range s.evictedOrder {
		if e == id {
			s.evictedOrder = append(s.evictedOrder[:i], s.evictedOrder[i+1:]...)
			break
		}
	}
}

// Evicted reports whether id was removed by quota enforcement, and
// when. It distinguishes "the quota GC took it" from "never existed"
// for readers that raced an eviction (List, then GET of a listed id).
func (s *Store) Evicted(id string) (time.Time, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.evicted[id]
	return t, ok
}

// writeAtomic writes through a temp file and a rename so a crash cannot
// leave a torn entry.
func (s *Store) writeAtomic(path string, blob []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	tmp, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("planstore: %w", err)
	}
	_, werr := tmp.Write(blob)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		return fmt.Errorf("planstore: writing %s: %v / %v%s",
			filepath.Base(path), werr, cerr, discardTemp(tmp.Name()))
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("planstore: %w%s", err, discardTemp(tmp.Name()))
	}
	return nil
}

// discardTemp removes a failed write's temp file and renders the cleanup
// failure, if any, for attachment to the primary error — an orphaned
// temp file in the store directory should be visible, not silent.
func discardTemp(name string) string {
	if err := os.Remove(name); err != nil {
		return fmt.Sprintf(" (orphaned temp file: %v)", err)
	}
	return ""
}

// Load reads and decodes one entry by ID.
func (s *Store) Load(id string) (*planner.Plan, Meta, error) {
	if !validID(id) {
		return nil, Meta{}, fmt.Errorf("planstore: invalid entry id %q", id)
	}
	path := filepath.Join(s.dir, id+planExt)
	blob, err := readBounded(path)
	if err != nil {
		return nil, Meta{}, err
	}
	plan, meta, err := DecodeEntry(blob)
	if err != nil {
		return nil, Meta{}, fmt.Errorf("planstore: %s: %w", filepath.Base(path), err)
	}
	meta.SizeBytes = int64(len(blob))
	return plan, meta, nil
}

// GetRaw returns the verified raw bytes of one entry — the fleet's
// plan-distribution payload (GET /plans/{id}/raw). The envelope
// checksum is verified before the bytes are served, so a corrupted file
// is an error here, never a corrupt transfer; the fetcher re-verifies
// against the content address, making the transfer self-checking end to
// end. A missing entry's error unwraps to os.ErrNotExist.
func (s *Store) GetRaw(id string) ([]byte, error) {
	if !ValidID(id) {
		return nil, fmt.Errorf("planstore: invalid entry id %q", id)
	}
	blob, err := readBounded(filepath.Join(s.dir, id+planExt))
	if err != nil {
		return nil, err
	}
	if _, _, err := decodeEnvelope(blob); err != nil {
		return nil, fmt.Errorf("planstore: %s: %w", id+planExt, err)
	}
	return blob, nil
}

// ImportRaw verifies and installs a complete encoded entry under its
// own content address — the worker-side half of plan distribution. The
// envelope (magic, format version, checksum) is verified and the entry
// lands at EntryID(key) regardless of what the sender claimed, so a
// store can only ever hold entries consistent with their address.
func (s *Store) ImportRaw(blob []byte) (Meta, error) {
	meta, _, err := decodeEnvelope(blob)
	if err != nil {
		return Meta{}, fmt.Errorf("planstore: importing entry: %w", err)
	}
	if err := s.writeAtomic(filepath.Join(s.dir, meta.ID+planExt), blob); err != nil {
		return Meta{}, err
	}
	meta.SizeBytes = int64(len(blob))
	s.clearEvicted(meta.ID)
	s.Touch(meta.ID)
	s.enforceQuota()
	return meta, nil
}

// Stat returns one entry's metadata without reading its payload. A
// missing entry's error unwraps to os.ErrNotExist.
func (s *Store) Stat(id string) (Meta, error) {
	if !ValidID(id) {
		return Meta{}, fmt.Errorf("planstore: invalid entry id %q", id)
	}
	return readMetaHeader(filepath.Join(s.dir, id+planExt))
}

// Delete removes one entry by ID. Deleting an absent entry errors.
func (s *Store) Delete(id string) error {
	if !validID(id) {
		return fmt.Errorf("planstore: invalid entry id %q", id)
	}
	if err := os.Remove(filepath.Join(s.dir, id+planExt)); err != nil {
		return fmt.Errorf("planstore: %w", err)
	}
	return nil
}

// List returns the metadata of every readable entry, sorted by key. It
// parses only each file's meta header (the payload and checksum are not
// read), so listing a store full of multi-megabyte plans stays cheap;
// integrity is verified where plans are actually decoded (Load/LoadAll).
// Entries whose header cannot be parsed are silently omitted — LoadAll
// is the path that reports skip reasons.
func (s *Store) List() ([]Meta, error) {
	ids, err := s.ids()
	if err != nil {
		return nil, err
	}
	metas := make([]Meta, 0, len(ids))
	for _, id := range ids {
		meta, err := readMetaHeader(filepath.Join(s.dir, id+planExt))
		if err != nil {
			continue
		}
		metas = append(metas, meta)
	}
	sort.Slice(metas, func(i, j int) bool { return metas[i].Key < metas[j].Key })
	return metas, nil
}

// metaHeaderPrefix bounds how much of an entry readMetaHeader reads: the
// meta header (version, key and name strings, counts) sits at the front
// of the file and is far smaller than this.
const metaHeaderPrefix = 64 << 10

// readMetaHeader parses an entry's meta header from a bounded prefix of
// the file, without reading the payload or verifying the checksum.
func readMetaHeader(path string) (Meta, error) {
	f, err := os.Open(path)
	if err != nil {
		return Meta{}, fmt.Errorf("planstore: %w", err)
	}
	defer f.Close()
	buf := make([]byte, metaHeaderPrefix)
	n, err := io.ReadFull(f, buf)
	if err != nil && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
		return Meta{}, fmt.Errorf("planstore: %w", err)
	}
	prefix := buf[:n]
	if len(prefix) < len(planMagic) || string(prefix[:len(planMagic)]) != planMagic {
		return Meta{}, fmt.Errorf("planstore: %s is not a plan entry", filepath.Base(path))
	}
	meta, err := parseMeta(binenc.NewReader(prefix[len(planMagic):]))
	if err != nil {
		return Meta{}, fmt.Errorf("planstore: %s: %w", filepath.Base(path), err)
	}
	fi, err := f.Stat()
	if err != nil {
		return Meta{}, fmt.Errorf("planstore: %w", err)
	}
	meta.SizeBytes = fi.Size()
	return meta, nil
}

// Loaded is one successfully rehydrated entry.
type Loaded struct {
	Meta Meta
	Plan *planner.Plan
}

// LoadAll decodes every entry in the store, skipping (and reporting via
// logf, when non-nil) entries that are corrupt, truncated or written
// under an incompatible format version. The error return is reserved for
// directory-level failures; per-entry problems only skip that entry.
func (s *Store) LoadAll(logf func(format string, args ...any)) ([]Loaded, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	ids, err := s.ids()
	if err != nil {
		return nil, err
	}
	out := make([]Loaded, 0, len(ids))
	for _, id := range ids {
		path := filepath.Join(s.dir, id+planExt)
		blob, err := readBounded(path)
		if err != nil {
			logf("planstore: skipping %s: %v", filepath.Base(path), err)
			continue
		}
		plan, meta, err := DecodeEntry(blob)
		if err != nil {
			logf("planstore: skipping %s: %v", filepath.Base(path), err)
			continue
		}
		meta.SizeBytes = int64(len(blob))
		out = append(out, Loaded{Meta: meta, Plan: plan})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Meta.Key < out[j].Meta.Key })
	return out, nil
}

func (s *Store) ids() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("planstore: %w", err)
	}
	var ids []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, planExt) {
			continue
		}
		id := strings.TrimSuffix(name, planExt)
		if validID(id) {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// ValidID reports whether id has the shape of an entry content address
// (24 hex characters) — the gate every by-id lookup applies before
// touching the filesystem.
func ValidID(id string) bool {
	if len(id) != 24 {
		return false
	}
	_, err := hex.DecodeString(id)
	return err == nil
}

func validID(id string) bool { return ValidID(id) }

func readBounded(path string) ([]byte, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("planstore: %w", err)
	}
	if fi.Size() > maxEntryBytes {
		return nil, fmt.Errorf("planstore: %s is %d bytes, past the %d-byte entry cap", filepath.Base(path), fi.Size(), maxEntryBytes)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("planstore: %w", err)
	}
	return blob, nil
}

// --- entry envelope ---

// EncodeEntry serializes a plan into a complete store entry (envelope +
// payload + checksum). It is exported for amdesign -save, which writes
// entries outside a Store directory.
func EncodeEntry(key string, plan *planner.Plan, savedAt time.Time) ([]byte, Meta, error) {
	if key == "" {
		return nil, Meta{}, fmt.Errorf("planstore: empty plan key")
	}
	var payload bytes.Buffer
	if err := encodePlan(&payload, plan, 0); err != nil {
		return nil, Meta{}, err
	}
	st := plan.State()
	meta := Meta{
		ID:         EntryID(key),
		Key:        key,
		Generator:  st.Generator,
		Workload:   st.Workload.Name(),
		Queries:    st.Workload.NumQueries(),
		Cells:      st.Workload.Cells(),
		Shards:     len(st.Shards),
		SavedAt:    savedAt.UTC().Truncate(time.Microsecond),
		LibVersion: LibraryVersion,
	}

	var out bytes.Buffer
	out.WriteString(planMagic)
	binenc.PutInt(&out, FormatVersion)
	binenc.PutString(&out, LibraryVersion)
	binenc.PutString(&out, key)
	binenc.PutU64(&out, uint64(meta.SavedAt.UnixMicro()))
	binenc.PutString(&out, meta.Generator)
	binenc.PutString(&out, meta.Workload)
	binenc.PutInt(&out, meta.Queries)
	binenc.PutInt(&out, meta.Cells)
	binenc.PutInt(&out, meta.Shards)
	binenc.PutBytes(&out, payload.Bytes())
	sum := sha256.Sum256(out.Bytes())
	out.Write(sum[:])
	return out.Bytes(), meta, nil
}

// DecodeEntry verifies and decodes a complete store entry.
func DecodeEntry(blob []byte) (*planner.Plan, Meta, error) {
	meta, payload, err := decodeEnvelope(blob)
	if err != nil {
		return nil, Meta{}, err
	}
	r := binenc.NewReader(payload)
	plan, err := readPlan(r, 0)
	if err != nil {
		return nil, Meta{}, err
	}
	if r.Remaining() != 0 {
		return nil, Meta{}, fmt.Errorf("%d trailing bytes after plan record", r.Remaining())
	}
	return plan, meta, nil
}

// decodeEnvelope verifies magic, format version and checksum and returns
// the meta header plus the (still encoded) plan payload.
func decodeEnvelope(blob []byte) (Meta, []byte, error) {
	if len(blob) < len(planMagic)+sha256.Size {
		return Meta{}, nil, fmt.Errorf("entry truncated (%d bytes)", len(blob))
	}
	if string(blob[:len(planMagic)]) != planMagic {
		return Meta{}, nil, fmt.Errorf("bad magic %q (not a plan entry)", blob[:len(planMagic)])
	}
	body, sum := blob[:len(blob)-sha256.Size], blob[len(blob)-sha256.Size:]
	if got := sha256.Sum256(body); !bytes.Equal(got[:], sum) {
		return Meta{}, nil, fmt.Errorf("checksum mismatch (corrupt or truncated entry)")
	}
	r := binenc.NewReader(body[len(planMagic):])
	meta, err := parseMeta(r)
	if err != nil {
		return Meta{}, nil, err
	}
	payload, err := r.Bytes()
	if err != nil {
		return Meta{}, nil, err
	}
	if r.Remaining() != 0 {
		return Meta{}, nil, fmt.Errorf("%d trailing bytes after payload", r.Remaining())
	}
	return meta, payload, nil
}

// parseMeta reads the meta header (everything between the magic and the
// plan payload): format version, library version, key, timestamp and the
// plan's descriptive fields.
func parseMeta(r *binenc.Reader) (Meta, error) {
	version, err := r.Uvarint()
	if err != nil {
		return Meta{}, err
	}
	if version != FormatVersion {
		return Meta{}, fmt.Errorf("format version %d, this build reads %d", version, FormatVersion)
	}
	var meta Meta
	if meta.LibVersion, err = r.String(); err != nil {
		return Meta{}, err
	}
	if meta.Key, err = r.String(); err != nil {
		return Meta{}, err
	}
	us, err := r.U64()
	if err != nil {
		return Meta{}, err
	}
	meta.SavedAt = time.UnixMicro(int64(us)).UTC()
	if meta.Generator, err = r.String(); err != nil {
		return Meta{}, err
	}
	if meta.Workload, err = r.String(); err != nil {
		return Meta{}, err
	}
	if meta.Queries, err = r.IntBounded(1<<40, "query count"); err != nil {
		return Meta{}, err
	}
	if meta.Cells, err = r.IntBounded(1<<40, "cell count"); err != nil {
		return Meta{}, err
	}
	if meta.Shards, err = r.IntBounded(1<<20, "shard count"); err != nil {
		return Meta{}, err
	}
	meta.ID = EntryID(meta.Key)
	return meta, nil
}

// --- calibration record ---

// SaveCalibration persists the planner's per-generator design-throughput
// snapshot (planner.RateSnapshot) so a restarted server budgets
// MaxDesignTime hints from measured history.
func (s *Store) SaveCalibration(rates map[string]float64) error {
	names := make([]string, 0, len(rates))
	for n := range rates {
		names = append(names, n)
	}
	sort.Strings(names)
	var out bytes.Buffer
	out.WriteString(calMagic)
	binenc.PutInt(&out, FormatVersion)
	binenc.PutString(&out, LibraryVersion)
	binenc.PutInt(&out, len(names))
	for _, n := range names {
		binenc.PutString(&out, n)
		binenc.PutFloat(&out, rates[n])
	}
	sum := sha256.Sum256(out.Bytes())
	out.Write(sum[:])
	return s.writeAtomic(filepath.Join(s.dir, calFile), out.Bytes())
}

// LoadCalibration reads the persisted throughput snapshot. A missing
// file returns an empty map; a corrupt or incompatible one returns an
// error (callers log and continue with defaults).
func (s *Store) LoadCalibration() (map[string]float64, error) {
	blob, err := os.ReadFile(filepath.Join(s.dir, calFile))
	if os.IsNotExist(err) {
		return map[string]float64{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("planstore: %w", err)
	}
	if len(blob) < len(calMagic)+sha256.Size || string(blob[:len(calMagic)]) != calMagic {
		return nil, fmt.Errorf("planstore: %s is not a calibration record", calFile)
	}
	body, sum := blob[:len(blob)-sha256.Size], blob[len(blob)-sha256.Size:]
	if got := sha256.Sum256(body); !bytes.Equal(got[:], sum) {
		return nil, fmt.Errorf("planstore: %s checksum mismatch", calFile)
	}
	r := binenc.NewReader(body[len(calMagic):])
	version, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if version != FormatVersion {
		return nil, fmt.Errorf("planstore: calibration format version %d, this build reads %d", version, FormatVersion)
	}
	if _, err := r.String(); err != nil { // library version, advisory
		return nil, err
	}
	n, err := r.IntBounded(r.Remaining(), "rate count")
	if err != nil {
		return nil, err
	}
	rates := make(map[string]float64, n)
	for i := 0; i < n; i++ {
		name, err := r.String()
		if err != nil {
			return nil, err
		}
		if rates[name], err = r.Float(); err != nil {
			return nil, err
		}
	}
	return rates, nil
}
