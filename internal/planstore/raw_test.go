package planstore

import (
	"errors"
	"math"
	"math/rand"
	"os"
	"testing"
)

// GetRaw/ImportRaw are the fleet's plan-distribution channel: raw entry
// bytes exported from one store must install verbatim into another
// under the same content address and decode to an equivalent plan.
func TestRawExportImportRoundTrip(t *testing.T) {
	src, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	plan := quotaPlan(t)
	key := CanonicalKey("raw:roundtrip", 1, "fp")
	meta, err := src.Put(key, plan)
	if err != nil {
		t.Fatal(err)
	}

	blob, err := src.GetRaw(meta.ID)
	if err != nil {
		t.Fatal(err)
	}

	dst, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	imported, err := dst.ImportRaw(blob)
	if err != nil {
		t.Fatal(err)
	}
	if imported.ID != meta.ID || imported.Key != key {
		t.Fatalf("imported identity (%s, %s), want (%s, %s)", imported.ID, imported.Key, meta.ID, key)
	}
	got, gotMeta, err := dst.Load(meta.ID)
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta.Key != key {
		t.Fatalf("loaded key %q, want %q", gotMeta.Key, key)
	}
	// The imported plan must release identically to the original on the
	// same seeded noise stream.
	x := make([]float64, plan.Workload.Cells())
	for i := range x {
		x[i] = float64(i % 5)
	}
	want, err := plan.Mechanism.AnswerGaussian(plan.Workload, x, testPrivacy, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	have, err := got.Mechanism.AnswerGaussian(got.Workload, x, testPrivacy, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(have[i]) {
			t.Fatalf("answer %d differs after raw transfer", i)
		}
	}
}

func TestRawRejectsDamage(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	meta, err := s.Put(CanonicalKey("raw:damage", 1, "fp"), quotaPlan(t))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := s.GetRaw(meta.ID)
	if err != nil {
		t.Fatal(err)
	}

	other, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	corrupt := append([]byte(nil), blob...)
	corrupt[len(corrupt)/2] ^= 0x01
	if _, err := other.ImportRaw(corrupt); err == nil {
		t.Fatal("corrupted entry imported")
	}
	if _, err := other.ImportRaw(blob[:len(blob)/2]); err == nil {
		t.Fatal("truncated entry imported")
	}

	// Missing and invalid ids.
	if _, err := s.GetRaw("000000000000000000000000"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing entry: err = %v, want ErrNotExist", err)
	}
	if _, err := s.GetRaw("../escape"); err == nil || errors.Is(err, os.ErrNotExist) {
		t.Fatalf("invalid id: err = %v, want a validation error", err)
	}
	if _, err := s.Stat("not-hex"); err == nil {
		t.Fatal("Stat accepted an invalid id")
	}
}

func TestStatReadsMetaWithoutPayload(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	meta, err := s.Put(CanonicalKey("raw:stat", 1, "fp"), quotaPlan(t))
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Stat(meta.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != meta.ID || st.Key != meta.Key || st.Generator != meta.Generator {
		t.Fatalf("Stat = %+v, want %+v", st, meta)
	}
	if _, err := s.Stat("ffffffffffffffffffffffff"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing entry: err = %v, want ErrNotExist", err)
	}
}

// The store remembers what its quota evicted, so a reader racing the GC
// can distinguish "evicted just now" from "never existed" — the
// List-then-Load race the HTTP layer turns into a 404 with a hint.
func TestEvictedTracking(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	plan := quotaPlan(t)
	meta, err := s.Put(CanonicalKey("raw:evict", 1, "fp"), plan)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Evicted(meta.ID); ok {
		t.Fatal("live entry reported evicted")
	}
	// A 1-byte quota evicts everything.
	s.SetQuota(1, nil)
	if planExists(t, s, meta.ID) {
		t.Fatal("entry survived a 1-byte quota")
	}
	if _, ok := s.Evicted(meta.ID); !ok {
		t.Fatal("evicted entry not remembered")
	}
	if _, ok := s.Evicted("ffffffffffffffffffffffff"); ok {
		t.Fatal("never-existing id reported evicted")
	}
	// Re-persisting the same key clears the eviction record.
	s.SetQuota(0, nil)
	if _, err := s.Put(CanonicalKey("raw:evict", 1, "fp"), plan); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Evicted(meta.ID); ok {
		t.Fatal("re-persisted entry still reported evicted")
	}
}
