// Plan codec: the binary serialization of a planner.Plan, built on the
// operator codec in internal/linalg. One encoded plan carries everything
// a restarted process needs to serve releases without re-designing:
//
//   - the winning generator's name and rationale;
//   - the planned workload (name, domain shape, query operator);
//   - the strategy operator, its dense form and eigenvalues when the
//     generator computed them, and the precomputed inference artifact
//     (pseudo-inverse or Gram matrix) so rehydration skips the O(n³)
//     preparation;
//   - the explicit inference method, modeled cost, design time and the
//     full admission-decision list (so /design of a warm plan still
//     explains itself);
//   - the memoized per-privacy-pair error analyses;
//   - for sharded plans, the full shard structure: per-shard info,
//     projection operator, row segments and the recursive sub-plan.
//
// The envelope (see store.go) frames the payload with a magic tag, the
// store format version, the library version and a SHA-256 checksum;
// Decode refuses anything whose version or checksum does not match, so an
// incompatible or corrupt plan is skipped with a reason, never mis-loaded.

package planstore

import (
	"bytes"
	"fmt"
	"math"
	"time"

	"adaptivemm/internal/binenc"
	"adaptivemm/internal/domain"
	"adaptivemm/internal/linalg"
	"adaptivemm/internal/mm"
	"adaptivemm/internal/planner"
	"adaptivemm/internal/workload"
)

// maxShardNesting bounds plan recursion: a sharded plan's sub-plans must
// be monolithic (the planner never re-shards a shard).
const maxShardNesting = 1

// The primitive writers and the bounds-checked reader are shared with
// the operator codec in internal/linalg; see internal/binenc.

// --- operator / matrix helpers ---

func putOperator(w *bytes.Buffer, op linalg.Operator) error {
	blob, err := linalg.MarshalOperator(op)
	if err != nil {
		return err
	}
	binenc.PutBytes(w, blob)
	return nil
}

func readOperator(r *binenc.Reader) (linalg.Operator, error) {
	blob, err := r.Bytes()
	if err != nil {
		return nil, err
	}
	return linalg.UnmarshalOperator(blob)
}

func readMatrix(r *binenc.Reader, what string) (*linalg.Matrix, error) {
	op, err := readOperator(r)
	if err != nil {
		return nil, err
	}
	m, ok := op.(*linalg.Matrix)
	if !ok {
		return nil, fmt.Errorf("planstore: %s is a %T, want a dense matrix", what, op)
	}
	return m, nil
}

// --- plan encoding ---

func encodeWorkload(w *bytes.Buffer, wl *workload.Workload) error {
	binenc.PutString(w, wl.Name())
	binenc.PutInts(w, wl.Shape())
	op := wl.Op()
	if op == nil {
		return fmt.Errorf("planstore: workload %q is gram-only and cannot be persisted", wl.Name())
	}
	return putOperator(w, op)
}

func readWorkload(r *binenc.Reader) (*workload.Workload, error) {
	name, err := r.String()
	if err != nil {
		return nil, err
	}
	dims, err := r.Ints()
	if err != nil {
		return nil, err
	}
	shape, err := domain.NewShape(dims...)
	if err != nil {
		return nil, fmt.Errorf("planstore: workload %q: %w", name, err)
	}
	op, err := readOperator(r)
	if err != nil {
		return nil, fmt.Errorf("planstore: workload %q operator: %w", name, err)
	}
	if op.Cols() != shape.Size() {
		return nil, fmt.Errorf("planstore: workload %q operator has %d cells for shape %v", name, op.Cols(), shape)
	}
	return workload.FromOperator(name, shape, op), nil
}

func encodePlan(w *bytes.Buffer, plan *planner.Plan, depth int) error {
	st := plan.State()
	if len(st.ShardPlans) > 0 && depth >= maxShardNesting {
		return fmt.Errorf("planstore: shard sub-plan is itself sharded")
	}
	binenc.PutString(w, st.Generator)
	binenc.PutString(w, st.Note)
	if err := encodeWorkload(w, st.Workload); err != nil {
		return err
	}
	binenc.PutBool(w, st.Eigenvalues != nil)
	if st.Eigenvalues != nil {
		binenc.PutFloats(w, st.Eigenvalues)
	}
	w.WriteByte(byte(st.Inference))
	binenc.PutFloat(w, st.ModeledCost)
	binenc.PutU64(w, uint64(st.DesignTime))
	binenc.PutInt(w, st.AnalysisCap)
	binenc.PutInt(w, len(st.Decisions))
	for _, d := range st.Decisions {
		binenc.PutString(w, d.Generator)
		binenc.PutBool(w, d.Admitted)
		binenc.PutBool(w, d.Selected)
		binenc.PutFloat(w, d.ModeledCost)
		binenc.PutString(w, d.Reason)
	}
	binenc.PutInt(w, len(st.ErrByPair))
	for pr, e := range st.ErrByPair {
		binenc.PutFloat(w, pr.Epsilon)
		binenc.PutFloat(w, pr.Delta)
		binenc.PutFloat(w, e)
	}
	binenc.PutInt(w, len(st.Shards))
	if len(st.Shards) == 0 {
		return encodeMonolithicStrategy(w, st)
	}
	if len(st.ShardPlans) != len(st.Shards) {
		return fmt.Errorf("planstore: plan has %d shard infos for %d sub-plans", len(st.Shards), len(st.ShardPlans))
	}
	shards := st.Mechanism.Shards()
	if len(shards) != len(st.Shards) {
		return fmt.Errorf("planstore: mechanism has %d shards, plan reports %d", len(shards), len(st.Shards))
	}
	for i, info := range st.Shards {
		binenc.PutString(w, info.Kind)
		binenc.PutInts(w, info.Attrs)
		binenc.PutInt(w, info.Cells)
		binenc.PutInt(w, info.Queries)
		binenc.PutString(w, info.Generator)
		binenc.PutString(w, info.Inference)
		binenc.PutFloat(w, info.ModeledCost)
		if err := putOperator(w, shards[i].Project); err != nil {
			return fmt.Errorf("planstore: shard %d projection: %w", i, err)
		}
		binenc.PutInt(w, len(shards[i].Segments))
		for _, seg := range shards[i].Segments {
			binenc.PutInt(w, seg.Start)
			binenc.PutInt(w, seg.Len)
		}
		if err := encodePlan(w, st.ShardPlans[i], depth+1); err != nil {
			return fmt.Errorf("planstore: shard %d sub-plan: %w", i, err)
		}
	}
	return nil
}

// encodeMonolithicStrategy writes the strategy operator and the prepared
// inference artifacts of a non-sharded plan. (A sharded plan's composite
// operator is not persisted: rehydration rebuilds it, with its lifted
// column norms, from the shard structure.)
func encodeMonolithicStrategy(w *bytes.Buffer, st planner.PlanState) error {
	if err := putOperator(w, st.Op); err != nil {
		return err
	}
	// Dense: usually the operator itself (flagged, not re-encoded).
	switch {
	case st.Dense == nil:
		w.WriteByte(0)
	case func() bool { m, ok := st.Op.(*linalg.Matrix); return ok && m == st.Dense }():
		w.WriteByte(1)
	default:
		w.WriteByte(2)
		if err := putOperator(w, st.Dense); err != nil {
			return err
		}
	}
	pinv := st.Mechanism.PreparedPinv()
	binenc.PutBool(w, pinv != nil)
	if pinv != nil {
		if err := putOperator(w, pinv); err != nil {
			return err
		}
	}
	gram := st.Mechanism.PreparedGram()
	binenc.PutBool(w, gram != nil)
	if gram != nil {
		if err := putOperator(w, gram); err != nil {
			return err
		}
	}
	return nil
}

func readPlan(r *binenc.Reader, depth int) (*planner.Plan, error) {
	var st planner.PlanState
	var err error
	if st.Generator, err = r.String(); err != nil {
		return nil, err
	}
	if st.Note, err = r.String(); err != nil {
		return nil, err
	}
	if st.Workload, err = readWorkload(r); err != nil {
		return nil, err
	}
	hasEigen, err := r.Bool()
	if err != nil {
		return nil, err
	}
	if hasEigen {
		if st.Eigenvalues, err = r.Floats(); err != nil {
			return nil, err
		}
	}
	infByte, err := r.Byte()
	if err != nil {
		return nil, err
	}
	st.Inference = mm.Inference(infByte)
	if st.ModeledCost, err = r.Float(); err != nil {
		return nil, err
	}
	dt, err := r.U64()
	if err != nil {
		return nil, err
	}
	st.DesignTime = time.Duration(dt)
	if st.AnalysisCap, err = r.IntBounded(math.MaxInt32, "analysis cap"); err != nil {
		return nil, err
	}
	nDec, err := r.IntBounded(r.Remaining(), "decision count")
	if err != nil {
		return nil, err
	}
	st.Decisions = make([]planner.Decision, nDec)
	for i := range st.Decisions {
		d := &st.Decisions[i]
		if d.Generator, err = r.String(); err != nil {
			return nil, err
		}
		if d.Admitted, err = r.Bool(); err != nil {
			return nil, err
		}
		if d.Selected, err = r.Bool(); err != nil {
			return nil, err
		}
		if d.ModeledCost, err = r.Float(); err != nil {
			return nil, err
		}
		if d.Reason, err = r.String(); err != nil {
			return nil, err
		}
	}
	nErr, err := r.IntBounded(r.Remaining()/24, "error-memo count")
	if err != nil {
		return nil, err
	}
	st.ErrByPair = make(map[mm.Privacy]float64, nErr)
	for i := 0; i < nErr; i++ {
		var pr mm.Privacy
		if pr.Epsilon, err = r.Float(); err != nil {
			return nil, err
		}
		if pr.Delta, err = r.Float(); err != nil {
			return nil, err
		}
		if st.ErrByPair[pr], err = r.Float(); err != nil {
			return nil, err
		}
	}
	nShards, err := r.IntBounded(r.Remaining(), "shard count")
	if err != nil {
		return nil, err
	}
	if nShards == 0 {
		if err := readMonolithicStrategy(r, &st); err != nil {
			return nil, err
		}
		return planner.RehydratePlan(st)
	}
	if depth >= maxShardNesting {
		return nil, fmt.Errorf("planstore: shard sub-plan is itself sharded")
	}
	return readShardedPlan(r, st, nShards, depth)
}

func readMonolithicStrategy(r *binenc.Reader, st *planner.PlanState) error {
	var err error
	if st.Op, err = readOperator(r); err != nil {
		return fmt.Errorf("planstore: strategy operator: %w", err)
	}
	denseMode, err := r.Byte()
	if err != nil {
		return err
	}
	switch denseMode {
	case 0:
	case 1:
		m, ok := st.Op.(*linalg.Matrix)
		if !ok {
			return fmt.Errorf("planstore: dense-is-op flag on a %T strategy", st.Op)
		}
		st.Dense = m
	case 2:
		if st.Dense, err = readMatrix(r, "dense strategy"); err != nil {
			return err
		}
	default:
		return fmt.Errorf("planstore: unknown dense mode %d", denseMode)
	}
	hasPinv, err := r.Bool()
	if err != nil {
		return err
	}
	var pinv *linalg.Matrix
	if hasPinv {
		if pinv, err = readMatrix(r, "pseudo-inverse"); err != nil {
			return err
		}
	}
	hasGram, err := r.Bool()
	if err != nil {
		return err
	}
	var gram *linalg.Matrix
	if hasGram {
		if gram, err = readMatrix(r, "Gram matrix"); err != nil {
			return err
		}
	}
	st.Mechanism, err = mm.NewMechanismPrepared(st.Op, st.Inference, pinv, gram)
	if err != nil {
		return fmt.Errorf("planstore: rebuilding mechanism: %w", err)
	}
	return nil
}

func readShardedPlan(r *binenc.Reader, st planner.PlanState, nShards, depth int) (*planner.Plan, error) {
	st.Shards = make([]planner.ShardInfo, nShards)
	st.ShardPlans = make([]*planner.Plan, nShards)
	shards := make([]mm.Shard, nShards)
	var err error
	for i := 0; i < nShards; i++ {
		info := &st.Shards[i]
		if info.Kind, err = r.String(); err != nil {
			return nil, err
		}
		if info.Attrs, err = r.Ints(); err != nil {
			return nil, err
		}
		if len(info.Attrs) == 0 {
			info.Attrs = nil
		}
		if info.Cells, err = r.IntBounded(math.MaxInt32, "shard cells"); err != nil {
			return nil, err
		}
		if info.Queries, err = r.IntBounded(math.MaxInt32, "shard queries"); err != nil {
			return nil, err
		}
		if info.Generator, err = r.String(); err != nil {
			return nil, err
		}
		if info.Inference, err = r.String(); err != nil {
			return nil, err
		}
		if info.ModeledCost, err = r.Float(); err != nil {
			return nil, err
		}
		project, err := readOperator(r)
		if err != nil {
			return nil, fmt.Errorf("planstore: shard %d projection: %w", i, err)
		}
		nSegs, err := r.IntBounded(r.Remaining(), "segment count")
		if err != nil {
			return nil, err
		}
		segs := make([]mm.RowSegment, nSegs)
		for j := range segs {
			if segs[j].Start, err = r.IntBounded(math.MaxInt32, "segment start"); err != nil {
				return nil, err
			}
			if segs[j].Len, err = r.IntBounded(math.MaxInt32, "segment length"); err != nil {
				return nil, err
			}
		}
		sub, err := readPlan(r, depth+1)
		if err != nil {
			return nil, fmt.Errorf("planstore: shard %d sub-plan: %w", i, err)
		}
		st.ShardPlans[i] = sub
		shards[i] = mm.Shard{
			Mechanism: sub.Mechanism,
			Project:   project,
			Workload:  sub.Workload,
			Segments:  segs,
		}
	}
	// Rebuild the composite mechanism from the shard structure; it
	// revalidates the projections, the segment tiling and the lifted
	// sensitivity, and its strategy operator becomes the plan's.
	mech, err := mm.NewShardedMechanism(st.Workload, shards, 0)
	if err != nil {
		return nil, fmt.Errorf("planstore: rebuilding sharded mechanism: %w", err)
	}
	st.Mechanism = mech
	st.Op = mech.Strategy()
	return planner.RehydratePlan(st)
}
