package planstore

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"adaptivemm/internal/planner"
	"adaptivemm/internal/workload"
)

func quotaPlan(t *testing.T) *planner.Plan {
	t.Helper()
	pl := planner.New(planner.Config{})
	plan, err := pl.Plan(workload.Prefix(16), planner.Hints{Privacy: testPrivacy})
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func planExists(t *testing.T, s *Store, id string) bool {
	t.Helper()
	_, err := os.Stat(filepath.Join(s.Dir(), id+planExt))
	if err != nil && !os.IsNotExist(err) {
		t.Fatal(err)
	}
	return err == nil
}

// TestQuotaEvictsLeastRecentlyServed pins the planstore GC: past the
// byte budget, Put evicts least-recently-served entries (Touch order,
// falling back to mtime), each eviction is logged, serving an entry
// protects it, and the calibration record is exempt.
func TestQuotaEvictsLeastRecentlyServed(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	plan := quotaPlan(t)
	if err := s.SaveCalibration(map[string]float64{"eigen": 1e6}); err != nil {
		t.Fatal(err)
	}

	var logged []string
	logf := func(format string, args ...any) { logged = append(logged, fmt.Sprintf(format, args...)) }

	put := func(name string) Meta {
		meta, err := s.Put(CanonicalKey("quota:"+name, 1, "fp"), plan)
		if err != nil {
			t.Fatal(err)
		}
		// Entry timestamps must order the puts even on coarse clocks.
		time.Sleep(2 * time.Millisecond)
		return meta
	}

	a := put("a")
	// Two entries fit the quota, a third does not.
	s.SetQuota(2*a.SizeBytes+a.SizeBytes/2, logf)
	b := put("b")
	if !planExists(t, s, a.ID) || !planExists(t, s, b.ID) {
		t.Fatal("two entries fit the quota; nothing should be evicted yet")
	}
	if len(logged) != 0 {
		t.Fatalf("no evictions expected yet, logged %q", logged)
	}

	c := put("c")
	if planExists(t, s, a.ID) {
		t.Fatal("a is least-recently-served and should have been evicted")
	}
	if !planExists(t, s, b.ID) || !planExists(t, s, c.ID) {
		t.Fatal("b and c are within the quota and must survive")
	}
	if len(logged) != 1 || !strings.Contains(logged[0], "quota eviction") || !strings.Contains(logged[0], a.ID) {
		t.Fatalf("eviction of %s must be logged, got %q", a.ID, logged)
	}

	// Serving b moves it to the recently-served end: the next Put evicts
	// c, not b.
	s.Touch(b.ID)
	time.Sleep(2 * time.Millisecond)
	d := put("d")
	if planExists(t, s, c.ID) {
		t.Fatal("c is least-recently-served after b was touched; it should be evicted")
	}
	if !planExists(t, s, b.ID) || !planExists(t, s, d.ID) {
		t.Fatal("touched b and fresh d must survive")
	}

	// The calibration record is never quota fodder.
	if _, err := os.Stat(filepath.Join(dir, calFile)); err != nil {
		t.Fatalf("calibration record must survive evictions: %v", err)
	}

	// SetQuota enforces immediately: a budget below any single entry
	// clears the plans (and only the plans).
	s.SetQuota(1, logf)
	ids, err := s.ids()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 0 {
		t.Fatalf("1-byte quota must clear the store, still have %v", ids)
	}
	if _, err := os.Stat(filepath.Join(dir, calFile)); err != nil {
		t.Fatalf("calibration record must survive a full purge: %v", err)
	}

	// Quota 0 disables enforcement.
	s.SetQuota(0, logf)
	e := put("e")
	f := put("f")
	g := put("g")
	for _, m := range []Meta{e, f, g} {
		if !planExists(t, s, m.ID) {
			t.Fatalf("quota 0 is unlimited; %s must not be evicted", m.ID)
		}
	}
}

// TestQuotaFreshProcessUsesMtime pins the cold-start eviction order: a
// store opened by a new process (empty served map) still evicts
// oldest-first by file mtime.
func TestQuotaFreshProcessUsesMtime(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	plan := quotaPlan(t)
	var metas []Meta
	for _, name := range []string{"a", "b", "c"} {
		meta, err := s.Put(CanonicalKey("mtime:"+name, 1, "fp"), plan)
		if err != nil {
			t.Fatal(err)
		}
		metas = append(metas, meta)
		time.Sleep(5 * time.Millisecond)
	}

	// A second Store over the same directory has no served history.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2.SetQuota(metas[0].SizeBytes*2+metas[0].SizeBytes/2, nil)
	if planExists(t, s2, metas[0].ID) {
		t.Fatal("oldest entry by mtime should be evicted on a fresh process")
	}
	if !planExists(t, s2, metas[1].ID) || !planExists(t, s2, metas[2].ID) {
		t.Fatal("newer entries must survive")
	}
}
