package planstore

import (
	"bytes"
	"crypto/sha256"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"adaptivemm/internal/binenc"
	"adaptivemm/internal/domain"
	"adaptivemm/internal/linalg"
	"adaptivemm/internal/mm"
	"adaptivemm/internal/planner"
	"adaptivemm/internal/workload"
)

var testPrivacy = mm.Privacy{Epsilon: 0.5, Delta: 1e-4}

// plansUnderTest builds one plan per serving regime: small dense exact
// (dense-pinv inference), forced hierarchical (CGLS), closed-form
// marginals, a tall strategy (normal-CG with a persisted Gram), and a
// sharded two-block composition.
func plansUnderTest(t *testing.T) map[string]*planner.Plan {
	t.Helper()
	out := map[string]*planner.Plan{}
	pl := planner.New(planner.Config{})
	pl.Register(tallGen{})
	build := func(name string, w *workload.Workload, h planner.Hints) {
		h.Privacy = testPrivacy
		plan, err := pl.Plan(w, h)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = plan
	}
	build("eigen-pinv", workload.Prefix(64), planner.Hints{})
	build("hierarchical-cgls", workload.Prefix(512), planner.Hints{Generator: "hierarchical"})
	build("marginals", workload.Marginals(domain.MustShape(8, 8, 4), 2), planner.Hints{})
	build("tall-normal-cg", workload.Prefix(128), planner.Hints{Generator: "tall"})
	build("sharded", workload.Marginals(domain.MustShape(8, 8), 1), planner.Hints{})
	return out
}

// tallGen produces a strategy with 6n rows so the planner picks normal-CG
// inference and the mechanism persists a precomputed Gram matrix.
type tallGen struct{}

func (tallGen) Name() string { return "tall" }
func (tallGen) Propose(w *workload.Workload, h planner.Hints, forced bool) (*planner.Proposal, string) {
	if !forced {
		return nil, "rule hint: test generator, force it"
	}
	n := w.Cells()
	return &planner.Proposal{Cost: float64(n), Score: 9, Note: "tall test strategy",
		Build: func() (planner.Built, error) {
			b := linalg.NewSparseBuilder(n)
			for rep := 0; rep < 6; rep++ {
				for j := 0; j < n; j++ {
					b.AppendRow([]int{j, (j + 1) % n}, []float64{1, 0.5})
				}
			}
			return planner.Built{Op: b.Build()}, nil
		}}, ""
}

func TestPlanRoundTripAllRegimes(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for name, plan := range plansUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			key := CanonicalKey("test:"+name, 1, "fp")
			meta, err := s.Put(key, plan)
			if err != nil {
				t.Fatalf("put: %v", err)
			}
			if meta.Generator != plan.Generator || meta.Cells != plan.Workload.Cells() {
				t.Fatalf("meta %+v does not describe the plan", meta)
			}
			got, gotMeta, err := s.Load(meta.ID)
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			if gotMeta.Key != key || gotMeta.LibVersion != LibraryVersion {
				t.Fatalf("loaded meta %+v", gotMeta)
			}
			assertPlansEquivalent(t, plan, got)
		})
	}
}

// assertPlansEquivalent checks the rehydrated plan against the original:
// descriptive fields, memoized analyses, and — the part releases depend
// on — identical private answers on an identical noise stream.
func assertPlansEquivalent(t *testing.T, want, got *planner.Plan) {
	t.Helper()
	if got.Generator != want.Generator || got.Note != want.Note {
		t.Fatalf("generator/note = %q/%q, want %q/%q", got.Generator, got.Note, want.Generator, want.Note)
	}
	if got.Inference != want.Inference {
		t.Fatalf("inference = %s, want %s", got.Inference, want.Inference)
	}
	if got.ModeledCost != want.ModeledCost || got.DesignTime != want.DesignTime {
		t.Fatalf("cost/time = %g/%s, want %g/%s", got.ModeledCost, got.DesignTime, want.ModeledCost, want.DesignTime)
	}
	if len(got.Decisions) != len(want.Decisions) {
		t.Fatalf("decisions %d, want %d", len(got.Decisions), len(want.Decisions))
	}
	for i := range want.Decisions {
		if got.Decisions[i] != want.Decisions[i] {
			t.Fatalf("decision %d = %+v, want %+v", i, got.Decisions[i], want.Decisions[i])
		}
	}
	if len(got.Eigenvalues) != len(want.Eigenvalues) {
		t.Fatalf("eigenvalues %d, want %d", len(got.Eigenvalues), len(want.Eigenvalues))
	}
	for i := range want.Eigenvalues {
		if got.Eigenvalues[i] != want.Eigenvalues[i] {
			t.Fatalf("eigenvalue %d = %g, want %g", i, got.Eigenvalues[i], want.Eigenvalues[i])
		}
	}
	if len(got.Shards) != len(want.Shards) {
		t.Fatalf("shards %d, want %d", len(got.Shards), len(want.Shards))
	}
	// Memoized error must be served without recomputation and match.
	wantSt, gotSt := want.State(), got.State()
	if len(gotSt.ErrByPair) != len(wantSt.ErrByPair) {
		t.Fatalf("error memo has %d pairs, want %d", len(gotSt.ErrByPair), len(wantSt.ErrByPair))
	}
	for pr, e := range wantSt.ErrByPair {
		if ge, ok := gotSt.ErrByPair[pr]; !ok || ge != e {
			t.Fatalf("memoized error for %+v = %g, want %g", pr, gotSt.ErrByPair[pr], e)
		}
	}
	// Sensitivity — the noise calibration — must survive exactly.
	if gs, ws := got.Mechanism.SensitivityL2(), want.Mechanism.SensitivityL2(); math.Abs(gs-ws) > 1e-12*ws {
		t.Fatalf("sensitivity %g, want %g", gs, ws)
	}
	// Same histogram, same seeded noise stream → same released answers.
	x := make([]float64, want.Workload.Cells())
	r := rand.New(rand.NewSource(99))
	for i := range x {
		x[i] = float64(r.Intn(50))
	}
	wantAns, err := want.Mechanism.AnswerGaussian(want.Workload, x, testPrivacy, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatalf("original release: %v", err)
	}
	gotAns, err := got.Mechanism.AnswerGaussian(got.Workload, x, testPrivacy, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatalf("rehydrated release: %v", err)
	}
	if len(gotAns) != len(wantAns) {
		t.Fatalf("answers %d, want %d", len(gotAns), len(wantAns))
	}
	for i := range wantAns {
		if math.Abs(gotAns[i]-wantAns[i]) > 1e-9*(1+math.Abs(wantAns[i])) {
			t.Fatalf("answer %d = %g, want %g", i, gotAns[i], wantAns[i])
		}
	}
}

// TestRehydratedPlanSkipsPreparation asserts the artifacts were actually
// persisted: a dense-pinv plan decodes with its pseudo-inverse present,
// the normal-CG plan with its Gram.
func TestRehydratedPlanSkipsPreparation(t *testing.T) {
	plans := plansUnderTest(t)
	blob, _, err := EncodeEntry("k", plans["eigen-pinv"], time.Now())
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := DecodeEntry(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.Mechanism.PreparedPinv() == nil {
		t.Fatal("rehydrated dense-pinv mechanism has no persisted pseudo-inverse")
	}
	if plans["tall-normal-cg"].Inference != mm.InferNormalCG {
		t.Fatalf("tall plan chose %s, want normal-cg", plans["tall-normal-cg"].Inference)
	}
	blob, _, err = EncodeEntry("k2", plans["tall-normal-cg"], time.Now())
	if err != nil {
		t.Fatal(err)
	}
	if got, _, err = DecodeEntry(blob); err != nil {
		t.Fatal(err)
	}
	if got.Mechanism.PreparedGram() == nil {
		t.Fatal("rehydrated normal-CG mechanism has no persisted Gram")
	}
}

// TestExpectedErrorOnNewPairAfterRehydration: a pair outside the memo
// must still be computable from the decoded workload operator.
func TestExpectedErrorOnNewPairAfterRehydration(t *testing.T) {
	plan := plansUnderTest(t)["eigen-pinv"]
	blob, _, err := EncodeEntry("k", plan, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := DecodeEntry(blob)
	if err != nil {
		t.Fatal(err)
	}
	fresh := mm.Privacy{Epsilon: 1.25, Delta: 1e-6}
	wantE, err := plan.ExpectedError(fresh)
	if err != nil {
		t.Fatal(err)
	}
	gotE, err := got.ExpectedError(fresh)
	if err != nil {
		t.Fatal(err)
	}
	if wantE == 0 || math.Abs(gotE-wantE) > 1e-9*wantE {
		t.Fatalf("fresh-pair error %g, want %g", gotE, wantE)
	}
}

// TestCorruptedEntriesAreSkippedNotFatal is the satellite requirement:
// a bit-flipped entry fails its checksum, LoadAll reports it and loads
// everything else, and nothing panics.
func TestCorruptedEntriesAreSkippedNotFatal(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	plans := plansUnderTest(t)
	goodMeta, err := s.Put("good", plans["marginals"])
	if err != nil {
		t.Fatal(err)
	}
	badMeta, err := s.Put("bad", plans["eigen-pinv"])
	if err != nil {
		t.Fatal(err)
	}
	badPath := filepath.Join(dir, badMeta.ID+planExt)
	blob, err := os.ReadFile(badPath)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/2] ^= 0x10
	if err := os.WriteFile(badPath, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	var msgs []string
	loaded, err := s.LoadAll(func(format string, args ...any) {
		msgs = append(msgs, strings.TrimSpace(strings.Join([]string{format}, "")))
	})
	if err != nil {
		t.Fatalf("LoadAll: %v", err)
	}
	if len(loaded) != 1 || loaded[0].Meta.ID != goodMeta.ID {
		t.Fatalf("loaded %d entries, want only the good one", len(loaded))
	}
	if len(msgs) != 1 {
		t.Fatalf("skip reasons logged = %d, want 1", len(msgs))
	}
	if _, _, err := s.Load(badMeta.ID); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("loading the corrupt entry: err = %v, want checksum mismatch", err)
	}
}

// TestIncompatibleFormatVersionSkipped: an entry from a future format is
// refused with a version reason, not decoded.
func TestIncompatibleFormatVersionSkipped(t *testing.T) {
	plan := plansUnderTest(t)["eigen-pinv"]
	blob, _, err := EncodeEntry("k", plan, time.Now())
	if err != nil {
		t.Fatal(err)
	}
	// Patch the version varint (first byte after the magic; FormatVersion
	// is single-byte) and re-seal the checksum so only the version differs.
	blob[len(planMagic)] = FormatVersion + 1
	reseal(blob)
	if _, _, err := DecodeEntry(blob); err == nil || !strings.Contains(err.Error(), "format version") {
		t.Fatalf("future-version entry: err = %v, want a format-version refusal", err)
	}
}

func reseal(blob []byte) {
	sum := sha256.Sum256(blob[:len(blob)-sha256.Size])
	copy(blob[len(blob)-sha256.Size:], sum[:])
}

// TestCraftedLengthDoesNotPanic: a checksum-valid entry whose payload
// claims a string longer than the bytes remaining must decode to an
// error, not a slice-bounds panic — anyone who can place a file in the
// store directory must not be able to crash startup.
func TestCraftedLengthDoesNotPanic(t *testing.T) {
	var out bytes.Buffer
	out.WriteString(planMagic)
	binenc.PutInt(&out, FormatVersion)
	binenc.PutString(&out, LibraryVersion)
	binenc.PutString(&out, "crafted-key")
	binenc.PutU64(&out, 0)
	binenc.PutString(&out, "gen")
	binenc.PutString(&out, "wl")
	binenc.PutInt(&out, 1)
	binenc.PutInt(&out, 1)
	binenc.PutInt(&out, 0)
	// The plan payload opens with a generator string claiming far more
	// bytes than exist.
	var payload bytes.Buffer
	binenc.PutUvarint(&payload, 1<<20)
	payload.WriteString("x")
	binenc.PutBytes(&out, payload.Bytes())
	sum := sha256.Sum256(out.Bytes())
	out.Write(sum[:])

	if _, _, err := DecodeEntry(out.Bytes()); err == nil {
		t.Fatal("crafted over-length entry decoded without error")
	}
}

func TestCalibrationRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rates := map[string]float64{"": 7.5e8, "eigen": 1.2e9, "principal-vectors": 3.4e8}
	if err := s.SaveCalibration(rates); err != nil {
		t.Fatal(err)
	}
	got, err := s.LoadCalibration()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rates) {
		t.Fatalf("loaded %d rates, want %d", len(got), len(rates))
	}
	for k, v := range rates {
		if got[k] != v {
			t.Fatalf("rate[%q] = %g, want %g", k, got[k], v)
		}
	}
	// Corrupt → error, not garbage.
	path := filepath.Join(dir, calFile)
	blob, _ := os.ReadFile(path)
	blob[len(blob)-1] ^= 1
	os.WriteFile(path, blob, 0o644)
	if _, err := s.LoadCalibration(); err == nil {
		t.Fatal("corrupt calibration loaded without error")
	}
	// Missing → empty, no error.
	os.Remove(path)
	if got, err := s.LoadCalibration(); err != nil || len(got) != 0 {
		t.Fatalf("missing calibration: %v, %d rates", err, len(got))
	}
}

func TestListAndDelete(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	plans := plansUnderTest(t)
	m1, err := s.Put("key-a", plans["eigen-pinv"])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("key-b", plans["sharded"]); err != nil {
		t.Fatal(err)
	}
	metas, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) != 2 || metas[0].Key != "key-a" || metas[1].Key != "key-b" {
		t.Fatalf("list = %+v", metas)
	}
	if metas[1].Shards == 0 {
		t.Fatal("sharded entry lists zero shards")
	}
	if err := s.Delete(m1.ID); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(m1.ID); err == nil {
		t.Fatal("double delete did not error")
	}
	if metas, _ = s.List(); len(metas) != 1 {
		t.Fatalf("after delete, %d entries remain", len(metas))
	}
	if err := s.Delete("../escape"); err == nil {
		t.Fatal("path-traversal id accepted")
	}
}

func TestCanonicalKeyNormalization(t *testing.T) {
	a := CanonicalKey(" AllRange:8x16 ", 0, "fp")
	b := CanonicalKey("allrange:8x16", 1, "fp")
	if a != b {
		t.Fatalf("%q != %q", a, b)
	}
	if EntryID(a) != EntryID(b) || len(EntryID(a)) != 24 {
		t.Fatalf("ids diverge or malformed: %q %q", EntryID(a), EntryID(b))
	}
}
