package planstore

import (
	"crypto/sha256"
	"testing"
	"time"

	"adaptivemm/internal/mm"
	"adaptivemm/internal/planner"
	"adaptivemm/internal/workload"
)

// FuzzPlanstoreEntry feeds the store's entry decoder hostile blobs: any
// input must be cleanly rejected or decode into a plan that re-encodes —
// a decode panic would mean one corrupt entry on disk can crash server
// warm-start.
func FuzzPlanstoreEntry(f *testing.F) {
	pl := planner.New(planner.Config{})
	plan, err := pl.Plan(workload.Prefix(16), planner.Hints{Privacy: mm.Privacy{Epsilon: 0.5, Delta: 1e-4}})
	if err != nil {
		f.Fatal(err)
	}
	blob, _, err := EncodeEntry("fuzz-seed", plan, time.Unix(1700000000, 0))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add([]byte(planMagic))
	f.Fuzz(func(t *testing.T, data []byte) {
		check := func(b []byte) {
			plan, meta, err := DecodeEntry(b)
			if err != nil {
				return
			}
			if plan == nil {
				t.Fatal("nil plan with nil error")
			}
			if meta.Key == "" {
				return // EncodeEntry refuses empty keys by contract
			}
			re, _, err := EncodeEntry(meta.Key, plan, meta.SavedAt)
			if err != nil {
				t.Fatalf("re-encode of decoded plan failed: %v", err)
			}
			if _, _, err := DecodeEntry(re); err != nil {
				t.Fatalf("round-trip decode failed: %v", err)
			}
		}
		// As provided: hostile blobs are rejected at the magic or checksum.
		check(data)
		// Re-framed as an envelope body with a valid checksum, so mutations
		// exercise the header and plan parsers behind the integrity check.
		body := append([]byte(planMagic), data...)
		sum := sha256.Sum256(body)
		check(append(body, sum[:]...))
	})
}
