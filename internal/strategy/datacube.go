package strategy

import (
	"sort"

	"adaptivemm/internal/domain"
	"adaptivemm/internal/linalg"
	"adaptivemm/internal/workload"
)

// DataCube implements the BMAX algorithm of Ding et al. [7] adapted to
// (ε,δ)-differential privacy: choose a subset M of marginals to answer with
// the Gaussian mechanism so that the maximum error of deriving each
// requested marginal is minimized.
//
// Under L2 sensitivity, answering |M| marginals costs sensitivity² = |M|
// (each tuple contributes one count per chosen marginal), and deriving a
// requested marginal S from a chosen superset marginal T accumulates the
// noise of Π_{i∈T\S} dᵢ cells. BMAX therefore minimizes
//
//	|M| · max_S min_{T ∈ M, T ⊇ S} Π_{i∈T\S} dᵢ.
//
// As in the original paper this is solved approximately: for each candidate
// error threshold E (a distinct derivation cost), a greedy set cover finds
// a small M whose members cover every requested marginal within cost E,
// and the best |M|·E product wins. Requested marginals are identified by
// attribute subsets.
func DataCube(shape domain.Shape, requested [][]int) *Strategy {
	dims := len(shape)
	reqMasks := uniqueMasks(requested)
	if len(reqMasks) == 0 {
		return &Strategy{Name: "DataCube", A: workload.MarginalMatrix(shape, nil)}
	}

	// All candidate marginals (subsets of dims).
	candidates := make([]uint64, 0, 1<<dims)
	for m := uint64(0); m < 1<<dims; m++ {
		candidates = append(candidates, m)
	}

	// Derivation cost of answering S from T (T ⊇ S required).
	cost := func(s, t uint64) (float64, bool) {
		if s&^t != 0 {
			return 0, false
		}
		c := 1.0
		for b := 0; b < dims; b++ {
			if t&(1<<b) != 0 && s&(1<<b) == 0 {
				c *= float64(shape[b])
			}
		}
		return c, true
	}

	// Distinct achievable thresholds.
	thresholdSet := map[float64]bool{}
	for _, s := range reqMasks {
		for _, t := range candidates {
			if c, ok := cost(s, t); ok {
				thresholdSet[c] = true
			}
		}
	}
	thresholds := make([]float64, 0, len(thresholdSet))
	for c := range thresholdSet {
		thresholds = append(thresholds, c)
	}
	sort.Float64s(thresholds)

	bestObj := 0.0
	var bestSel []uint64
	for _, e := range thresholds {
		sel := greedyCover(reqMasks, candidates, func(s, t uint64) bool {
			c, ok := cost(s, t)
			return ok && c <= e
		})
		if sel == nil {
			continue
		}
		obj := float64(len(sel)) * e
		if bestSel == nil || obj < bestObj {
			bestObj, bestSel = obj, sel
		}
	}

	mats := make([]*linalg.Matrix, len(bestSel))
	for i, m := range bestSel {
		mats[i] = workload.MarginalMatrix(shape, maskToSubset(m, dims))
	}
	return &Strategy{Name: "DataCube", A: linalg.StackRows(mats...)}
}

// greedyCover selects candidates covering all requested masks, largest
// coverage first. Returns nil if coverage is impossible under covers.
func greedyCover(req, candidates []uint64, covers func(s, t uint64) bool) []uint64 {
	remaining := map[uint64]bool{}
	for _, s := range req {
		remaining[s] = true
	}
	var sel []uint64
	for len(remaining) > 0 {
		bestGain := 0
		var bestT uint64
		for _, t := range candidates {
			gain := 0
			for s := range remaining {
				if covers(s, t) {
					gain++
				}
			}
			if gain > bestGain {
				bestGain, bestT = gain, t
			}
		}
		if bestGain == 0 {
			return nil
		}
		sel = append(sel, bestT)
		for s := range remaining {
			if covers(s, bestT) {
				delete(remaining, s)
			}
		}
	}
	return sel
}

func uniqueMasks(subsets [][]int) []uint64 {
	seen := map[uint64]bool{}
	var out []uint64
	for _, s := range subsets {
		var m uint64
		for _, a := range s {
			m |= 1 << a
		}
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func maskToSubset(m uint64, dims int) []int {
	var s []int
	for b := 0; b < dims; b++ {
		if m&(1<<b) != 0 {
			s = append(s, b)
		}
	}
	return s
}
