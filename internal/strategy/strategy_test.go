package strategy

import (
	"math"
	"testing"

	"adaptivemm/internal/domain"
	"adaptivemm/internal/linalg"
	"adaptivemm/internal/workload"
)

func TestIdentityStrategy(t *testing.T) {
	s := Identity(domain.MustShape(2, 3))
	if !s.A.Equal(linalg.Identity(6), 0) {
		t.Fatal("identity strategy wrong")
	}
}

func TestHaarPow2MatchesPaperFig2(t *testing.T) {
	// The 8x8 wavelet matrix of Fig. 2.
	want := linalg.NewFromRows([][]float64{
		{1, 1, 1, 1, 1, 1, 1, 1},
		{1, 1, 1, 1, -1, -1, -1, -1},
		{1, 1, -1, -1, 0, 0, 0, 0},
		{0, 0, 0, 0, 1, 1, -1, -1},
		{1, -1, 0, 0, 0, 0, 0, 0},
		{0, 0, 1, -1, 0, 0, 0, 0},
		{0, 0, 0, 0, 1, -1, 0, 0},
		{0, 0, 0, 0, 0, 0, 1, -1},
	})
	got := haarPow2(8)
	if !got.Equal(want, 0) {
		t.Fatalf("haarPow2(8) =\n%v\nwant\n%v", got, want)
	}
}

func TestHaarRowsOrthogonal(t *testing.T) {
	m := haarPow2(16)
	g := m.Mul(m.T())
	for i := 0; i < g.Rows(); i++ {
		for j := 0; j < g.Cols(); j++ {
			if i != j && math.Abs(g.At(i, j)) > 1e-12 {
				t.Fatalf("haar rows %d,%d not orthogonal: %g", i, j, g.At(i, j))
			}
		}
	}
}

func TestWaveletFullRank(t *testing.T) {
	for _, dims := range [][]int{{8}, {5}, {6, 3}, {4, 4, 2}} {
		shape := domain.MustShape(dims...)
		s := Wavelet(shape)
		if s.A.Cols() != shape.Size() {
			t.Fatalf("wavelet cols %d for %v", s.A.Cols(), shape)
		}
		eg, err := linalg.SymEigen(s.A.Gram())
		if err != nil {
			t.Fatal(err)
		}
		if r := eg.Rank(1e-10); r != shape.Size() {
			t.Fatalf("wavelet rank %d over %v, want %d", r, shape, shape.Size())
		}
	}
}

func TestWaveletNonPow2Truncation(t *testing.T) {
	m := haar1D(5)
	if m.Cols() != 5 {
		t.Fatalf("cols = %d", m.Cols())
	}
	// No zero rows survive.
	for i := 0; i < m.Rows(); i++ {
		nz := false
		for _, v := range m.Row(i) {
			if v != 0 {
				nz = true
			}
		}
		if !nz {
			t.Fatalf("zero row %d survived truncation", i)
		}
	}
}

func TestHierarchical1DBinary(t *testing.T) {
	s := Hierarchical(domain.MustShape(8), 2)
	// Binary tree over 8 leaves: 1+2+4+8 = 15 nodes.
	if s.A.Rows() != 15 {
		t.Fatalf("rows = %d, want 15", s.A.Rows())
	}
	// Root row is all ones.
	for _, v := range s.A.Row(0) {
		if v != 1 {
			t.Fatal("root is not the total query")
		}
	}
	// Full rank (contains the leaves).
	eg, err := linalg.SymEigen(s.A.Gram())
	if err != nil {
		t.Fatal(err)
	}
	if eg.Rank(1e-10) != 8 {
		t.Fatal("hierarchical not full rank")
	}
}

func TestHierarchicalNonPow2(t *testing.T) {
	s := Hierarchical(domain.MustShape(7), 2)
	eg, err := linalg.SymEigen(s.A.Gram())
	if err != nil {
		t.Fatal(err)
	}
	if eg.Rank(1e-10) != 7 {
		t.Fatal("hierarchical(7) not full rank")
	}
	// Every level partitions: each row must be contiguous ones.
	for i := 0; i < s.A.Rows(); i++ {
		row := s.A.Row(i)
		first, last, count := -1, -1, 0
		for j, v := range row {
			if v == 1 {
				if first < 0 {
					first = j
				}
				last = j
				count++
			}
		}
		if count == 0 || count != last-first+1 {
			t.Fatalf("row %d not a contiguous range", i)
		}
	}
}

func TestHierarchicalBranchingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for branch < 2")
		}
	}()
	Hierarchical(domain.MustShape(4), 1)
}

func TestHierarchicalMultiDim(t *testing.T) {
	s := Hierarchical(domain.MustShape(4, 4), 2)
	if s.A.Cols() != 16 {
		t.Fatalf("cols = %d", s.A.Cols())
	}
	// 1D tree on 4 has 7 nodes; Kronecker → 49 rows.
	if s.A.Rows() != 49 {
		t.Fatalf("rows = %d, want 49", s.A.Rows())
	}
}

func TestHelmertOrthonormalBasis(t *testing.T) {
	for _, d := range []int{2, 3, 5, 8} {
		h := helmert(d)
		full := linalg.StackRows(constRow(d), h)
		if !full.Mul(full.T()).Equal(linalg.Identity(d), 1e-12) {
			t.Fatalf("helmert+const not orthonormal for d=%d", d)
		}
	}
}

func TestFourierSpansMarginals(t *testing.T) {
	shape := domain.MustShape(2, 3, 2)
	requested := [][]int{{0, 1}, {2}}
	s := Fourier(shape, requested)
	// The requested marginal queries must lie in the row space of the
	// strategy: residual after projection is zero.
	w := workload.MarginalSet("req", shape, requested)
	checkRowSpaceContains(t, s.A, w.Matrix())
}

func TestFourierFullClosureIsOrthonormal(t *testing.T) {
	shape := domain.MustShape(2, 2)
	s := Fourier(shape, [][]int{{0, 1}})
	// Downward closure of {0,1} = all 4 subsets → full orthonormal basis.
	if s.A.Rows() != 4 {
		t.Fatalf("rows = %d, want 4", s.A.Rows())
	}
	if !s.A.Mul(s.A.T()).Equal(linalg.Identity(4), 1e-12) {
		t.Fatal("full Fourier basis not orthonormal")
	}
}

func TestFourierDropsUnneededSubsets(t *testing.T) {
	shape := domain.MustShape(2, 2, 2)
	s := Fourier(shape, [][]int{{0}})
	// Closure of {0} = {∅, {0}} → 1 + 1 rows.
	if s.A.Rows() != 2 {
		t.Fatalf("rows = %d, want 2", s.A.Rows())
	}
}

func TestDownwardClosure(t *testing.T) {
	got := downwardClosure(3, [][]int{{0, 2}})
	// {}, {0}, {2}, {0,2}
	if len(got) != 4 {
		t.Fatalf("closure size = %d, want 4", len(got))
	}
	if len(got[0]) != 0 {
		t.Fatal("closure not sorted by size")
	}
}

func TestDataCubeCoversRequested(t *testing.T) {
	shape := domain.MustShape(2, 3, 2)
	requested := [][]int{{0}, {1}, {0, 1}}
	s := DataCube(shape, requested)
	w := workload.MarginalSet("req", shape, requested)
	checkRowSpaceContains(t, s.A, w.Matrix())
}

func TestDataCubeSingleMarginal(t *testing.T) {
	shape := domain.MustShape(4, 4)
	s := DataCube(shape, [][]int{{0, 1}})
	// The full 2-way marginal covers itself with cost 1: best is to answer
	// exactly it (16 rows).
	if s.A.Rows() != 16 {
		t.Fatalf("rows = %d, want 16", s.A.Rows())
	}
}

func TestDataCubeMergesWhenCheap(t *testing.T) {
	// Tiny dims: answering the full contingency table can cover many
	// requested marginals at low derivation cost vs |M| savings.
	shape := domain.MustShape(2, 2)
	s := DataCube(shape, [][]int{{0}, {1}})
	// Options: {0},{1} → |M|=2, E=1, obj 2; {0,1} → |M|=1, E=2, obj 2;
	// either is acceptable; just check coverage and nonzero rows.
	w := workload.MarginalSet("req", shape, [][]int{{0}, {1}})
	checkRowSpaceContains(t, s.A, w.Matrix())
}

func TestDataCubeEmptyRequest(t *testing.T) {
	s := DataCube(domain.MustShape(2, 2), nil)
	if s.A.Rows() == 0 {
		t.Fatal("empty DataCube strategy")
	}
}

func TestDropZeroRows(t *testing.T) {
	m := linalg.New(3, 2)
	m.Set(1, 0, 5)
	out := dropZeroRows(m)
	if out.Rows() != 1 || out.At(0, 0) != 5 {
		t.Fatalf("dropZeroRows = %v", out)
	}
	// No-op when nothing to drop.
	id := linalg.Identity(3)
	if dropZeroRows(id) != id {
		t.Fatal("dropZeroRows should return the same matrix when unchanged")
	}
}

// checkRowSpaceContains asserts every row of w lies in the row space of a,
// by solving the normal equations against aᵀ.
func checkRowSpaceContains(t *testing.T, a, w *linalg.Matrix) {
	t.Helper()
	pinv, err := linalg.PseudoInverse(a)
	if err != nil {
		t.Fatal(err)
	}
	// Projection of wᵀ onto colspace(aᵀ): w a⁺ a should equal w.
	proj := w.Mul(pinv).Mul(a)
	if !proj.Equal(w, 1e-8) {
		t.Fatal("workload rows not contained in strategy row space")
	}
}
