// Package strategy implements the strategy matrices the paper compares
// against (Sec 5 "Competing Approaches"), each adapted to (ε,δ)-differential
// privacy / L2 sensitivity exactly as described there:
//
//   - Identity: noisy cell counts.
//   - Wavelet: the Haar wavelet strategy of Xiao et al. [21]. The hybrid
//     optimization for small dimensions is unnecessary under L2 and omitted,
//     as in the paper.
//   - Hierarchical: the b-ary tree strategy of Hay et al. [13], extended to
//     multiple dimensions by Kronecker product, analogous to Wavelet.
//   - Fourier: the orthonormal marginal basis of Barak et al. [4], keeping
//     only the basis queries needed for the requested marginals.
//   - DataCube: the BMAX marginal-subset selection of Ding et al. [7] with
//     sensitivity measured under L2.
//
// A strategy is just a named query matrix; the matrix mechanism machinery
// lives in package mm.
package strategy

import (
	"fmt"
	"math"
	"sort"

	"adaptivemm/internal/domain"
	"adaptivemm/internal/linalg"
)

// Strategy is a named strategy matrix for the matrix mechanism.
type Strategy struct {
	Name string
	A    *linalg.Matrix
}

// Identity returns the identity strategy over the shape.
func Identity(shape domain.Shape) *Strategy {
	return &Strategy{Name: "Identity", A: linalg.Identity(shape.Size())}
}

// Wavelet returns the (unnormalized) Haar wavelet strategy over the shape,
// the Kronecker product of per-dimension 1-D Haar matrices. Dimensions that
// are not powers of two use the next power of two with the excess columns
// truncated (and rows that become all zero dropped), preserving full rank.
func Wavelet(shape domain.Shape) *Strategy {
	parts := make([]*linalg.Matrix, len(shape))
	for i, d := range shape {
		parts[i] = haar1D(d)
	}
	return &Strategy{Name: "Wavelet", A: dropZeroRows(linalg.KroneckerAll(parts...))}
}

// haar1D builds the 1-D Haar matrix for a domain of size d: the matrix for
// the next power of two p ≥ d, keeping the first d columns.
func haar1D(d int) *linalg.Matrix {
	p := 1
	for p < d {
		p *= 2
	}
	full := haarPow2(p)
	if p == d {
		return full
	}
	out := linalg.New(p, d)
	for i := 0; i < p; i++ {
		copy(out.Row(i), full.Row(i)[:d])
	}
	return dropZeroRows(out)
}

// haarPow2 builds the p x p unnormalized Haar matrix (p a power of two):
// the total row, then for each level the ±1 difference rows, exactly the
// wavelet matrix of the paper's Fig. 2.
func haarPow2(p int) *linalg.Matrix {
	m := linalg.New(p, p)
	for j := 0; j < p; j++ {
		m.Set(0, j, 1)
	}
	r := 1
	for block := p; block >= 2; block /= 2 {
		for start := 0; start < p; start += block {
			row := m.Row(r)
			half := block / 2
			for j := start; j < start+half; j++ {
				row[j] = 1
			}
			for j := start + half; j < start+block; j++ {
				row[j] = -1
			}
			r++
		}
	}
	return m
}

// Hierarchical returns the b-ary hierarchical strategy of Hay et al.: the
// total query plus recursive partitions of each node into (up to) branch
// parts down to single cells, per dimension, combined across dimensions by
// Kronecker product.
func Hierarchical(shape domain.Shape, branch int) *Strategy {
	if branch < 2 {
		panic(fmt.Sprintf("strategy: branching factor %d < 2", branch))
	}
	parts := make([]*linalg.Matrix, len(shape))
	for i, d := range shape {
		parts[i] = hierarchical1D(d, branch)
	}
	return &Strategy{
		Name: fmt.Sprintf("Hierarchical(b=%d)", branch),
		A:    dropZeroRows(linalg.KroneckerAll(parts...)),
	}
}

// HierarchicalOperator is the Hierarchical strategy in matrix-free form:
// per-dimension CSR tree matrices (O(d log d) nonzeros each) combined by
// a Kronecker operator. It scales to domains far past the dense cap — the
// 1-D tree on 2048 cells holds ~4k rows and ~25k nonzeros — and is the
// structured strategy the server falls back to for very large domains,
// where it is near-optimal for range workloads (Sec 5).
func HierarchicalOperator(shape domain.Shape, branch int) linalg.Operator {
	if branch < 2 {
		panic(fmt.Sprintf("strategy: branching factor %d < 2", branch))
	}
	parts := make([]linalg.Operator, len(shape))
	for i, d := range shape {
		parts[i] = hierarchical1DSparse(d, branch)
	}
	return linalg.NewKronOp(parts...)
}

// IdentityOperator is the Identity strategy in O(1)-memory form.
func IdentityOperator(shape domain.Shape) linalg.Operator {
	return linalg.Eye(shape.Size())
}

// treeNode is one interval of the b-ary partition tree.
type treeNode struct{ lo, hi int } // inclusive

// hierarchicalNodes enumerates the tree nodes over [0,d) breadth-first.
func hierarchicalNodes(d, branch int) []treeNode {
	var rows []treeNode
	queue := []treeNode{{0, d - 1}}
	for len(queue) > 0 {
		nd := queue[0]
		queue = queue[1:]
		rows = append(rows, nd)
		size := nd.hi - nd.lo + 1
		if size <= 1 {
			continue
		}
		// Split into up to branch nearly-equal contiguous parts.
		parts := branch
		if size < parts {
			parts = size
		}
		base := size / parts
		extra := size % parts
		at := nd.lo
		for p := 0; p < parts; p++ {
			step := base
			if p < extra {
				step++
			}
			queue = append(queue, treeNode{at, at + step - 1})
			at += step
		}
	}
	return rows
}

func hierarchical1D(d, branch int) *linalg.Matrix {
	nodes := hierarchicalNodes(d, branch)
	m := linalg.New(len(nodes), d)
	for i, nd := range nodes {
		row := m.Row(i)
		for j := nd.lo; j <= nd.hi; j++ {
			row[j] = 1
		}
	}
	return m
}

func hierarchical1DSparse(d, branch int) *linalg.Sparse {
	b := linalg.NewSparseBuilder(d)
	for _, nd := range hierarchicalNodes(d, branch) {
		b.AppendRangeRow(nd.lo, nd.hi, 1)
	}
	return b.Build()
}

// dropZeroRows removes rows that are identically zero.
func dropZeroRows(m *linalg.Matrix) *linalg.Matrix {
	var keep []int
	for i := 0; i < m.Rows(); i++ {
		for _, v := range m.Row(i) {
			if v != 0 {
				keep = append(keep, i)
				break
			}
		}
	}
	if len(keep) == m.Rows() {
		return m
	}
	out := linalg.New(len(keep), m.Cols())
	for r, i := range keep {
		copy(out.Row(r), m.Row(i))
	}
	return out
}

// Fourier returns Barak et al.'s strategy for a workload of marginals over
// the given attribute subsets: the orthonormal tensor basis restricted to
// the downward closure of the requested subsets (dropping unnecessary
// basis queries reduces sensitivity, as the paper notes for the L2
// adaptation). Per dimension the basis is the normalized constant vector
// plus orthonormal Helmert contrasts, the real-valued analogue of the
// binary-domain Fourier basis used by Barak.
func Fourier(shape domain.Shape, requested [][]int) *Strategy {
	closure := downwardClosure(len(shape), requested)
	var mats []*linalg.Matrix
	for _, s := range closure {
		mats = append(mats, FourierBlock(shape, s))
	}
	return &Strategy{Name: "Fourier", A: linalg.StackRows(mats...)}
}

// FourierBlock returns the orthonormal basis block for one attribute
// subset: the Kronecker product of Helmert contrasts on the subset's
// dimensions and the normalized constant row on the others. The blocks
// over all subsets together form an orthonormal basis of R^n, and each
// block spans the part of the marginal on its subset that lower-order
// marginals do not determine.
func FourierBlock(shape domain.Shape, attrs []int) *linalg.Matrix {
	inSet := make([]bool, len(shape))
	for _, a := range attrs {
		inSet[a] = true
	}
	parts := make([]*linalg.Matrix, len(shape))
	for i, d := range shape {
		if inSet[i] {
			parts[i] = helmert(d)
		} else {
			parts[i] = constRow(d)
		}
	}
	return linalg.KroneckerAll(parts...)
}

// helmert returns the (d-1) x d orthonormal Helmert contrast matrix: row k
// has k ones, then -k, then zeros, normalized to unit length. Together with
// the constant row it forms an orthonormal basis of R^d.
func helmert(d int) *linalg.Matrix {
	m := linalg.New(d-1, d)
	for k := 1; k < d; k++ {
		row := m.Row(k - 1)
		norm := math.Sqrt(float64(k*k + k)) // sqrt(k·1² + k²)
		for j := 0; j < k; j++ {
			row[j] = 1 / norm
		}
		row[k] = -float64(k) / norm
	}
	return m
}

// constRow returns the 1 x d normalized constant row.
func constRow(d int) *linalg.Matrix {
	m := linalg.New(1, d)
	v := 1 / math.Sqrt(float64(d))
	for j := range m.Row(0) {
		m.Row(0)[j] = v
	}
	return m
}

// downwardClosure returns every subset of {0..dims-1} contained in at least
// one requested subset, sorted by size then lexicographically.
func downwardClosure(dims int, requested [][]int) [][]int {
	seen := map[uint64]bool{}
	var addAll func(mask uint64)
	addAll = func(mask uint64) {
		if seen[mask] {
			return
		}
		seen[mask] = true
		for b := 0; b < dims; b++ {
			if mask&(1<<b) != 0 {
				addAll(mask &^ (1 << b))
			}
		}
	}
	for _, s := range requested {
		var mask uint64
		for _, a := range s {
			mask |= 1 << a
		}
		addAll(mask)
	}
	masks := make([]uint64, 0, len(seen))
	for m := range seen {
		masks = append(masks, m)
	}
	sort.Slice(masks, func(i, j int) bool {
		pi, pj := popcount(masks[i]), popcount(masks[j])
		if pi != pj {
			return pi < pj
		}
		return masks[i] < masks[j]
	})
	out := make([][]int, len(masks))
	for i, m := range masks {
		var s []int
		for b := 0; b < dims; b++ {
			if m&(1<<b) != 0 {
				s = append(s, b)
			}
		}
		out[i] = s
	}
	return out
}

func popcount(x uint64) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}
