package adaptivemm

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

var testPrivacy = Privacy{Epsilon: 0.5, Delta: 1e-4}

func TestPublicQuickstartFlow(t *testing.T) {
	w := AllRange(32)
	s, err := Design(w)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := LowerBound(w, testPrivacy)
	if err != nil {
		t.Fatal(err)
	}
	e, err := s.Error(w, testPrivacy)
	if err != nil {
		t.Fatal(err)
	}
	if e < lb || e > 1.3*lb {
		t.Fatalf("error %g vs lower bound %g outside the paper's envelope", e, lb)
	}
}

func TestPublicAnswerOnData(t *testing.T) {
	w := Marginals(1, 4, 4)
	s, err := Design(w)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 16)
	for i := range x {
		x[i] = float64(10 + i)
	}
	r := rand.New(rand.NewSource(1))
	ans, err := s.Answer(w, x, testPrivacy, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != w.NumQueries() {
		t.Fatalf("got %d answers for %d queries", len(ans), w.NumQueries())
	}
	// Consistency: both 1-way marginals must sum to the same total.
	var m0, m1 float64
	for i := 0; i < 4; i++ {
		m0 += ans[i]
		m1 += ans[4+i]
	}
	if math.Abs(m0-m1) > 1e-6 {
		t.Fatalf("inconsistent marginals: %g vs %g", m0, m1)
	}
}

func TestPublicEstimate(t *testing.T) {
	w := Prefix(8)
	s, err := Design(w)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{5, 5, 5, 5, 5, 5, 5, 5}
	r := rand.New(rand.NewSource(2))
	xhat, err := s.Estimate(x, testPrivacy, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(xhat) != 8 {
		t.Fatalf("estimate length %d", len(xhat))
	}
}

func TestPublicDesignVariants(t *testing.T) {
	w := AllRange(27)
	exact, err := Design(w)
	if err != nil {
		t.Fatal(err)
	}
	sep, err := DesignSeparated(w, 3)
	if err != nil {
		t.Fatal(err)
	}
	pv, err := DesignPrincipal(w, 7)
	if err != nil {
		t.Fatal(err)
	}
	fo, err := Design(w, WithFirstOrderSolver())
	if err != nil {
		t.Fatal(err)
	}
	eExact, _ := exact.Error(w, testPrivacy)
	for _, s := range []*Strategy{sep, pv, fo} {
		e, err := s.Error(w, testPrivacy)
		if err != nil {
			t.Fatal(err)
		}
		if e > 1.2*eExact {
			t.Fatalf("%s error %g too far above exact %g", s.Name(), e, eExact)
		}
	}
}

func TestPublicErrorWithCustomStrategy(t *testing.T) {
	w := IdentityWorkload(4)
	rows := [][]float64{
		{1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 1, 0}, {0, 0, 0, 1},
	}
	e, err := Error(w, rows, testPrivacy)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(testPrivacy.P())
	if math.Abs(e-want) > 1e-9 {
		t.Fatalf("identity-on-identity error %g, want %g", e, want)
	}
}

func TestPublicBuilders(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	if w := RandomRange(15, r, 4, 4); w.NumQueries() != 15 {
		t.Fatalf("RandomRange m = %d", w.NumQueries())
	}
	if w := Predicate(9, r, 8); w.NumQueries() != 9 {
		t.Fatalf("Predicate m = %d", w.NumQueries())
	}
	if w := RangeMarginals(1, 3, 3); w.NumQueries() != 12 {
		t.Fatalf("RangeMarginals m = %d", w.NumQueries())
	}
	u := Union("u", IdentityWorkload(4), Prefix(4))
	if u.NumQueries() != 8 {
		t.Fatalf("Union m = %d", u.NumQueries())
	}
	f := FromRows("f", [][]float64{{1, 1, 0, 0}}, 2, 2)
	if f.NumQueries() != 1 || f.Cells() != 4 {
		t.Fatal("FromRows wrong")
	}
}

func TestStrategyMatrixIsCopy(t *testing.T) {
	w := Prefix(4)
	s, err := Design(w)
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	m[0][0] = 12345
	m2, err := s.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	if m2[0][0] == 12345 {
		t.Fatal("Matrix() exposed internal state")
	}
}

// A matrix-free strategy over a huge domain must refuse densification
// with an error instead of exhausting memory.
func TestStrategyMatrixRefusesHugeOperators(t *testing.T) {
	s, err := HierarchicalStrategy(2, 2048, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Matrix(); err == nil {
		t.Fatal("Matrix() of a ~4M-cell matrix-free strategy did not error")
	}
}

// The planner-backed public API reports its decision and honors hints.
func TestDesignAutoPlanInfo(t *testing.T) {
	s, err := DesignAuto(Marginals(2, 4, 4, 2), PlanHints{})
	if err != nil {
		t.Fatal(err)
	}
	info, ok := s.PlanInfo()
	if !ok {
		t.Fatal("planner-built strategy has no plan info")
	}
	if info.Generator != "marginals" {
		t.Fatalf("generator = %q, want marginals (closed-form optimal)", info.Generator)
	}
	big, err := DesignAuto(AllRange(2048), PlanHints{MaxDesignTime: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if info, _ := big.PlanInfo(); info.Generator != "hierarchical" {
		t.Fatalf("tight-budget generator = %q, want hierarchical", info.Generator)
	}
}
