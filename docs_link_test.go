package adaptivemm

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches markdown inline links [text](target). Reference-style
// links are not used in this repo's docs.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// docFiles returns README.md plus every markdown file under docs/.
func docFiles(t *testing.T) []string {
	t.Helper()
	files := []string{"README.md"}
	entries, err := filepath.Glob(filepath.Join("docs", "*.md"))
	if err != nil {
		t.Fatal(err)
	}
	return append(files, entries...)
}

// TestDocLinks is the docs link checker CI runs: every relative link in
// README.md and docs/*.md must resolve to an existing file or directory
// (fragments are checked for presence of the file only). External links
// are skipped — CI must not depend on the network.
func TestDocLinks(t *testing.T) {
	for _, file := range docFiles(t) {
		body, err := os.ReadFile(file)
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		for _, match := range mdLink.FindAllStringSubmatch(string(body), -1) {
			target := match[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue // external
			}
			if strings.HasPrefix(target, "#") {
				continue // same-file fragment
			}
			target = strings.SplitN(target, "#", 2)[0]
			resolved := filepath.Join(filepath.Dir(file), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s links to %q, which does not resolve (%v)", file, match[1], err)
			}
		}
	}
}

// TestReadmeLinksDocs pins the documentation surface: the README must
// link both docs/ARCHITECTURE.md and docs/HTTP_API.md so the doc pages
// stay discoverable.
func TestReadmeLinksDocs(t *testing.T) {
	body, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"docs/ARCHITECTURE.md", "docs/HTTP_API.md", "docs/PERFORMANCE.md", "docs/OBSERVABILITY.md"} {
		if !strings.Contains(string(body), "("+want+")") {
			t.Errorf("README.md does not link %s", want)
		}
		if _, err := os.Stat(want); err != nil {
			t.Errorf("%s missing: %v", want, err)
		}
	}
}
