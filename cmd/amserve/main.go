// Command amserve runs the differentially private release engine: analysts
// POST a workload to /design once (repeated specs hit the strategy cache),
// upload histograms to /datasets once with an optional privacy budget cap,
// then request releases one at a time from /answer or in concurrent batches
// from /release. The server tracks and *enforces* privacy spend per dataset
// — a release that would exceed a dataset's cap is refused with HTTP 429
// and the remaining budget. Unseeded releases draw crypto-seeded noise;
// "seed" pins a reproducible stream for inline ad-hoc histograms only.
// Releases against registered datasets refuse pinned seeds (a known seed
// lets the requester subtract the noise and recover the exact data);
// -allow-seeded-releases re-enables them on single-user debug servers.
//
// With -store the server persists designed plans to a durable plan store
// and rehydrates its strategy cache (and the planner's design-throughput
// calibration) from it on startup, so a restart serves previously
// designed workloads from cache instead of re-designing them. GET /plans
// lists the stored plans; DELETE /plans/{id} withdraws one from future
// restarts. Plans designed offline with amdesign -save can be dropped
// into the store directory.
//
// -workers turns the server into a fleet coordinator: sharded plans
// route their per-shard inference to the listed worker amserve
// processes, with consistent-hash placement, retry along the ring, and
// local fallback when a shard's workers are all down. -worker-of turns
// it into a worker of that coordinator: it serves POST /shards and
// fetches plans it has never seen from the coordinator's plan store by
// content address. GET /fleet reports either role's health and
// counters. Distributed releases are bit-identical to local ones — the
// coordinator draws the noise and accounts the budget; only the
// deterministic per-shard solve is remote.
//
// -pprof-addr starts net/http/pprof on a separate listener (off by
// default, never on the serving address), for profiling a live server.
//
// SIGINT/SIGTERM shut the server down gracefully: in-flight releases are
// drained and the plan-store write-behind queue is flushed before exit.
//
//	amserve -addr :8080 -store /var/lib/amserve/plans
//	curl -X POST localhost:8080/design   -d '{"workload":"allrange:8x16"}'
//	curl -X POST localhost:8080/datasets -d '{"name":"db","histogram":[...],
//	     "cap":{"epsilon":2,"delta":1e-3}}'
//	curl -X POST localhost:8080/answer   -d '{"strategy":"s1","dataset":"db",
//	     "epsilon":0.5,"delta":1e-4}'
//	curl -X POST localhost:8080/release  -d '{"releases":[
//	     {"strategy":"s1","dataset":"db","epsilon":0.1,"delta":1e-5},
//	     {"strategy":"s1","dataset":"db","epsilon":0.1,"delta":1e-5}],
//	     "parallelism":8}'
//	curl localhost:8080/datasets         # cells, cap, spent, remaining
//	curl localhost:8080/ledger           # committed spend per dataset
//	curl localhost:8080/plans            # durable plan-store entries
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"adaptivemm/internal/server"
)

// shutdownGrace bounds how long a draining server waits for in-flight
// releases before exiting anyway.
const shutdownGrace = 30 * time.Second

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	storeDir := flag.String("store", "",
		"plan-store directory: persist designed plans and rehydrate the strategy cache on startup (empty = memory only)")
	storeQuota := flag.Int64("store-quota", 0,
		"plan-store byte budget: past it, least-recently-served plans are evicted (0 = unlimited; requires -store)")
	maxStreams := flag.Int("max-streams", 0,
		"max concurrent streamed releases (0 = server default); excess streams get 503 + Retry-After")
	allowSeeded := flag.Bool("allow-seeded-releases", false,
		"DEBUG ONLY: honor client-pinned noise seeds on registered datasets (lets the requester reconstruct the noise and defeat the privacy budget)")
	pprofAddr := flag.String("pprof-addr", "",
		"optional separate listen address for net/http/pprof profiling endpoints (empty = disabled; never exposed on the serving listener)")
	metricsAddr := flag.String("metrics-addr", "",
		"optional separate listen address for the observability surface (/metrics and /debug/traces); both are always served on the main address too")
	workers := flag.String("workers", "",
		"comma-separated worker base URLs; makes this server a fleet coordinator routing sharded inference to them")
	workerOf := flag.String("worker-of", "",
		"coordinator base URL; makes this server a fleet worker serving POST /shards and fetching unknown plans from it")
	shardTimeout := flag.Duration("shard-timeout", 0,
		"per-attempt timeout for one remote shard request (0 = fleet default)")
	flag.Parse()

	if *storeQuota > 0 && *storeDir == "" {
		log.Fatal("-store-quota requires -store")
	}
	if *workers != "" && *workerOf != "" {
		log.Fatal("-workers and -worker-of are mutually exclusive: a coordinator is not a worker")
	}
	var workerURLs []string
	if *workers != "" {
		for _, u := range strings.Split(*workers, ",") {
			if u = strings.TrimSpace(u); u != "" {
				workerURLs = append(workerURLs, u)
			}
		}
		if len(workerURLs) == 0 {
			log.Fatal("-workers given but no worker URLs parsed")
		}
	}
	srv, err := server.Open(server.Options{
		AllowSeededReleases:  *allowSeeded,
		StoreDir:             *storeDir,
		StoreQuotaBytes:      *storeQuota,
		MaxConcurrentStreams: *maxStreams,
		FleetWorkers:         workerURLs,
		CoordinatorURL:       *workerOf,
		ShardTimeout:         *shardTimeout,
	})
	if err != nil {
		log.Fatal(err)
	}
	if *allowSeeded {
		log.Printf("WARNING: seeded releases enabled; registered-dataset privacy budgets are NOT enforceable against the seeding client")
	}
	if len(workerURLs) > 0 {
		log.Printf("amserve fleet coordinator over %d worker(s): %s", len(workerURLs), strings.Join(workerURLs, ", "))
	}
	if *workerOf != "" {
		log.Printf("amserve fleet worker of %s", *workerOf)
	}
	if *storeDir != "" {
		if *storeQuota > 0 {
			log.Printf("amserve plan store at %s (quota %d bytes, LRU eviction)", *storeDir, *storeQuota)
		} else {
			log.Printf("amserve plan store at %s", *storeDir)
		}
	}

	// Profiling runs on its own listener so the endpoints can be bound to
	// localhost (or firewalled) independently of the serving address, and
	// are never reachable through the API surface. The default net/http
	// mux would register pprof globally; an explicit mux keeps the
	// exposure opt-in per route.
	if *pprofAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("amserve pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, mux); err != nil {
				log.Printf("amserve: pprof listener: %v", err)
			}
		}()
	}

	// Like pprof, the metrics side listener lets operators scrape a
	// server whose main port sits behind stricter network policy. The
	// main handler serves the same endpoints regardless.
	if *metricsAddr != "" {
		mh := srv.MetricsHandler()
		go func() {
			log.Printf("amserve metrics listening on %s", *metricsAddr)
			if err := http.ListenAndServe(*metricsAddr, mh); err != nil {
				log.Printf("amserve: metrics listener: %v", err)
			}
		}()
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("amserve listening on %s", *addr)
		errCh <- hs.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		// Listener failed outright; still flush whatever was queued.
		if cerr := srv.Close(); cerr != nil {
			log.Printf("amserve: flushing plan store: %v", cerr)
		}
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("amserve shutting down: draining in-flight releases (up to %s)", shutdownGrace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("amserve: shutdown: %v", err)
	}
	// In-flight requests are done (or timed out): flush the plan-store
	// write-behind queue and the calibration snapshot.
	if err := srv.Close(); err != nil {
		log.Printf("amserve: closing plan store: %v", err)
	}
	log.Printf("amserve stopped")
}
