// Command amserve runs the differentially private release engine: analysts
// POST a workload to /design once (repeated specs hit the strategy cache),
// upload histograms to /datasets once with an optional privacy budget cap,
// then request releases one at a time from /answer or in concurrent batches
// from /release. The server tracks and *enforces* privacy spend per dataset
// — a release that would exceed a dataset's cap is refused with HTTP 429
// and the remaining budget. Unseeded releases draw crypto-seeded noise;
// "seed" pins a reproducible stream for inline ad-hoc histograms only.
// Releases against registered datasets refuse pinned seeds (a known seed
// lets the requester subtract the noise and recover the exact data);
// -allow-seeded-releases re-enables them on single-user debug servers.
//
//	amserve -addr :8080
//	curl -X POST localhost:8080/design   -d '{"workload":"allrange:8x16"}'
//	curl -X POST localhost:8080/datasets -d '{"name":"db","histogram":[...],
//	     "cap":{"epsilon":2,"delta":1e-3}}'
//	curl -X POST localhost:8080/answer   -d '{"strategy":"s1","dataset":"db",
//	     "epsilon":0.5,"delta":1e-4}'
//	curl -X POST localhost:8080/release  -d '{"releases":[
//	     {"strategy":"s1","dataset":"db","epsilon":0.1,"delta":1e-5},
//	     {"strategy":"s1","dataset":"db","epsilon":0.1,"delta":1e-5}],
//	     "parallelism":8}'
//	curl localhost:8080/datasets         # cells, cap, spent, remaining
//	curl localhost:8080/ledger           # committed spend per dataset
package main

import (
	"flag"
	"log"
	"net/http"

	"adaptivemm/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	allowSeeded := flag.Bool("allow-seeded-releases", false,
		"DEBUG ONLY: honor client-pinned noise seeds on registered datasets (lets the requester reconstruct the noise and defeat the privacy budget)")
	flag.Parse()
	srv := server.NewWithOptions(server.Options{AllowSeededReleases: *allowSeeded})
	if *allowSeeded {
		log.Printf("WARNING: seeded releases enabled; registered-dataset privacy budgets are NOT enforceable against the seeding client")
	}
	log.Printf("amserve listening on %s", *addr)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		log.Fatal(err)
	}
}
