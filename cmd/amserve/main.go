// Command amserve runs the batch query-answering HTTP service: analysts
// POST a workload to /design once, then request differentially private
// releases from /answer; the server tracks cumulative privacy spend per
// dataset at /ledger.
//
//	amserve -addr :8080
//	curl -X POST localhost:8080/design -d '{"workload":"allrange:8x16"}'
//	curl -X POST localhost:8080/answer -d '{"strategy":"s1","dataset":"db",
//	     "histogram":[...],"epsilon":0.5,"delta":1e-4}'
package main

import (
	"flag"
	"log"
	"net/http"

	"adaptivemm/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()
	log.Printf("amserve listening on %s", *addr)
	if err := http.ListenAndServe(*addr, server.New().Handler()); err != nil {
		log.Fatal(err)
	}
}
