package main

import (
	"fmt"
	"math/rand"
	"time"

	"adaptivemm/internal/mm"
	"adaptivemm/internal/planner"
	"adaptivemm/internal/planstore"
	"adaptivemm/internal/wio"
)

// planBenchResult is one design-path measurement: how long generator
// selection and the full planning run take for a workload spec, which
// generator wins, and the error it promises. Appended to BENCH_plan.json
// so successive PRs can track the design path alongside release
// throughput.
type planBenchResult struct {
	Spec          string  `json:"spec"`
	Generator     string  `json:"generator"`
	Inference     string  `json:"inference"`
	ModeledCost   float64 `json:"modeledCost"`
	SelectMicros  float64 `json:"selectMicros"`
	DesignSeconds float64 `json:"designSeconds"`
	// ExpectedError is omitted (not 0 = "perfect") when the domain is past
	// the analysis cap and the O(n³) error analysis was skipped.
	ExpectedError float64 `json:"expectedError,omitempty"`
	// Shards is the shard count of a sharded plan; omitted for monolithic
	// plans.
	Shards int `json:"shards,omitempty"`
	// MonolithicDesignSeconds is the design latency of the same spec
	// re-planned with sharding disabled — recorded only when the default
	// plan was sharded, so the sharded-vs-monolithic trade is visible in
	// the trajectory.
	MonolithicDesignSeconds float64 `json:"monolithicDesignSeconds,omitempty"`
	// MonolithicGenerator names the generator the non-sharded re-plan
	// chose.
	MonolithicGenerator string `json:"monolithicGenerator,omitempty"`
	// WarmLoadSeconds is how long rehydrating the same plan from a
	// serialized plan-store entry takes — the restart cost the plan store
	// pays instead of DesignSeconds.
	WarmLoadSeconds float64 `json:"warmLoadSeconds,omitempty"`
	// PlanBytes is the serialized entry size.
	PlanBytes int `json:"planBytes,omitempty"`
}

// planBenchSuite is the default spec set for -planbench all: one per
// planner regime (small dense exact, large 1-D structured, large product
// factored, closed-form marginals, sharded two-block marginals).
var planBenchSuite = []string{
	"prefix:256",
	"allrange:2048",
	"allrange:64x64",
	"marginals:2:8x8x4",
	"marginals:1:64x64",
}

// runPlanBench measures generator-selection latency (Explain, averaged
// over selectIters runs) and full planning latency (one Plan build) for
// each spec, appending the results to the trajectory file.
func runPlanBench(spec string, outPath string) error {
	specs := []string{spec}
	if spec == "all" {
		specs = planBenchSuite
	}
	p := mm.Privacy{Epsilon: 0.5, Delta: 1e-4}
	const selectIters = 64
	for _, sp := range specs {
		w, err := wio.ParseWorkloadSpec(sp, rand.New(rand.NewSource(1)))
		if err != nil {
			return err
		}
		pl := planner.New(planner.Config{})
		hints := planner.Hints{Privacy: p}

		start := time.Now()
		for i := 0; i < selectIters; i++ {
			if _, err := pl.Explain(w, hints); err != nil {
				return fmt.Errorf("planbench %s: %v", sp, err)
			}
		}
		selectMicros := float64(time.Since(start).Microseconds()) / selectIters

		start = time.Now()
		plan, err := pl.Plan(w, hints)
		if err != nil {
			return fmt.Errorf("planbench %s: %v", sp, err)
		}
		designSeconds := time.Since(start).Seconds()
		expected, err := plan.ExpectedError(p)
		if err != nil {
			return err
		}

		res := planBenchResult{
			Spec:          sp,
			Generator:     plan.Generator,
			Inference:     plan.Inference.String(),
			ModeledCost:   plan.ModeledCost,
			SelectMicros:  selectMicros,
			DesignSeconds: designSeconds,
			ExpectedError: expected,
			Shards:        len(plan.Shards),
		}

		// Cold design vs warm load: serialize the plan as a store entry and
		// time the rehydration a restarted server would run instead of the
		// design above.
		blob, _, err := planstore.EncodeEntry(planstore.CanonicalKey(sp, 1, hints.Fingerprint()), plan, time.Now())
		if err != nil {
			return fmt.Errorf("planbench %s: encoding plan: %v", sp, err)
		}
		start = time.Now()
		if _, _, err := planstore.DecodeEntry(blob); err != nil {
			return fmt.Errorf("planbench %s: rehydrating plan: %v", sp, err)
		}
		res.WarmLoadSeconds = time.Since(start).Seconds()
		res.PlanBytes = len(blob)
		if len(plan.Shards) > 0 {
			// Record the monolithic counterfactual next to the sharded run:
			// the same spec planned with sharding disabled, on a fresh
			// planner so neither run warms the other.
			mono := planner.New(planner.Config{})
			monoHints := hints
			monoHints.MaxShards = -1
			start = time.Now()
			monoPlan, err := mono.Plan(w, monoHints)
			if err != nil {
				return fmt.Errorf("planbench %s (monolithic): %v", sp, err)
			}
			res.MonolithicDesignSeconds = time.Since(start).Seconds()
			res.MonolithicGenerator = monoPlan.Generator
		}
		errNote := fmt.Sprintf("err %.4g", expected)
		if expected == 0 {
			errNote = "err skipped (past analysis cap)"
		}
		fmt.Printf("plan bench: %-18s → %-17s select %.1fµs, design %.3fs (modeled %.3g), %s\n",
			sp, plan.Generator, selectMicros, designSeconds, plan.ModeledCost, errNote)
		fmt.Printf("            %-18s   warm load %.4fs from %d-byte entry (cold design %.3fs)\n",
			"", res.WarmLoadSeconds, res.PlanBytes, designSeconds)
		if res.Shards > 0 {
			fmt.Printf("            %-18s   sharded ×%d vs monolithic %s: design %.3fs vs %.3fs\n",
				"", res.Shards, res.MonolithicGenerator, designSeconds, res.MonolithicDesignSeconds)
		}
		if outPath != "" {
			if err := appendBenchResult(outPath, res); err != nil {
				return err
			}
		}
	}
	return nil
}
