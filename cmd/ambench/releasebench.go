package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	"adaptivemm/internal/server"
)

// releaseBenchResult is one throughput measurement of the batch /release
// endpoint, appended to a BENCH_*.json trajectory so successive PRs can
// track serving performance.
type releaseBenchResult struct {
	Spec              string  `json:"spec"`
	Mode              string  `json:"mode"`
	Requests          int     `json:"requests"`
	Batch             int     `json:"batch"`
	Parallelism       int     `json:"parallelism"`
	Seconds           float64 `json:"seconds"`
	ReleasesPerSecond float64 `json:"releasesPerSecond"`
}

// runReleaseBench drives the batch /release endpoint of an in-process
// release engine: design the spec once (cache-hot), register one dataset,
// then push `requests` releases through in batches of `batch` with the
// given server-side parallelism, measuring end-to-end HTTP throughput.
func runReleaseBench(spec, mode string, requests, batch, parallelism int, outPath string) error {
	ts := httptest.NewServer(server.New().Handler())
	defer ts.Close()

	post := func(path string, body any) (map[string]any, error) {
		buf, err := json.Marshal(body)
		if err != nil {
			return nil, err
		}
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(buf))
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("%s: status %d: %v", path, resp.StatusCode, out["error"])
		}
		return out, nil
	}

	design, err := post("/design", map[string]any{"workload": spec})
	if err != nil {
		return err
	}
	strategyID, _ := design["strategy"].(string)
	cells := int(design["cells"].(float64))
	hist := make([]float64, cells)
	for i := range hist {
		hist[i] = float64(i % 17)
	}
	if _, err := post("/datasets", map[string]any{"name": "bench", "histogram": hist}); err != nil {
		return err
	}

	item := map[string]any{
		"strategy": strategyID, "dataset": "bench",
		"epsilon": 0.01, "delta": 1e-6, "mode": mode,
	}
	start := time.Now()
	done := 0
	for done < requests {
		n := batch
		if requests-done < n {
			n = requests - done
		}
		releases := make([]map[string]any, n)
		for i := range releases {
			releases[i] = item
		}
		out, err := post("/release", map[string]any{"releases": releases, "parallelism": parallelism})
		if err != nil {
			return err
		}
		if failed, _ := out["failed"].(float64); failed != 0 {
			return fmt.Errorf("release bench: %v of %d releases failed", failed, n)
		}
		done += n
	}
	elapsed := time.Since(start).Seconds()

	res := releaseBenchResult{
		Spec:        spec,
		Mode:        mode,
		Requests:    requests,
		Batch:       batch,
		Parallelism: parallelism,
		Seconds:     elapsed,
	}
	if elapsed > 0 {
		res.ReleasesPerSecond = float64(requests) / elapsed
	}
	fmt.Printf("release bench: %s (%s) — %d releases in %.3fs → %.1f releases/s\n",
		spec, mode, requests, elapsed, res.ReleasesPerSecond)
	if outPath == "" {
		return nil
	}
	return appendBenchResult(outPath, res)
}

// appendBenchResult appends one measurement to a JSON-array trajectory
// file, creating it when absent. Entries already in the file are kept
// verbatim, so one trajectory can mix measurement shapes across PRs.
func appendBenchResult(path string, res any) error {
	var results []json.RawMessage
	if raw, err := os.ReadFile(path); err == nil {
		// A corrupt or foreign file should not be silently destroyed.
		if err := json.Unmarshal(raw, &results); err != nil {
			return fmt.Errorf("bench trajectory %s exists but is not a result array: %v", path, err)
		}
	}
	entry, err := json.Marshal(res)
	if err != nil {
		return err
	}
	results = append(results, entry)
	out, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
