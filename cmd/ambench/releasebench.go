package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"testing"
	"time"

	"adaptivemm/internal/domain"
	"adaptivemm/internal/linalg"
	"adaptivemm/internal/mm"
	"adaptivemm/internal/obs"
	"adaptivemm/internal/server"
	"adaptivemm/internal/strategy"
	"adaptivemm/internal/workload"
)

// releaseBenchResult is one throughput measurement of the batch /release
// endpoint, appended to a BENCH_*.json trajectory so successive PRs can
// track serving performance. Paths carries library-level ns/op and
// allocs/op per inference path so allocation regressions are visible in
// the same trajectory as end-to-end throughput.
type releaseBenchResult struct {
	Spec              string  `json:"spec"`
	Mode              string  `json:"mode"`
	Requests          int     `json:"requests"`
	Batch             int     `json:"batch"`
	Parallelism       int     `json:"parallelism"`
	Transport         string  `json:"transport,omitempty"`
	Seconds           float64 `json:"seconds"`
	ReleasesPerSecond float64 `json:"releasesPerSecond"`
	Phase             string  `json:"phase,omitempty"`
	// Latency is the release-latency tail recovered from the server's
	// own am_release_seconds histogram at GET /metrics — the same
	// numbers a production scrape would compute, so the trajectory and
	// the dashboards can never disagree about what was measured.
	Latency   *latencyBenchResult `json:"latency,omitempty"`
	Streaming *streamBenchResult  `json:"streaming,omitempty"`
	Paths     []pathBenchResult   `json:"paths,omitempty"`
}

// latencyBenchResult carries interpolated histogram quantiles of
// per-release latency, in milliseconds.
type latencyBenchResult struct {
	Count     int64   `json:"count"`
	P50Millis float64 `json:"p50Millis"`
	P95Millis float64 `json:"p95Millis"`
	P99Millis float64 `json:"p99Millis"`
}

// scrapeReleaseLatency scrapes the in-process handler's /metrics page,
// re-parses the exposition, rebuilds the am_release_seconds bucket
// counts from the cumulative _bucket samples, and recovers the latency
// quantiles with obs.BucketQuantile — the exact pipeline an external
// Prometheus + histogram_quantile() would run.
func scrapeReleaseLatency(h http.Handler) (*latencyBenchResult, error) {
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		return nil, fmt.Errorf("/metrics: status %d", rec.Code)
	}
	exp, err := obs.ParseText(rec.Body)
	if err != nil {
		return nil, fmt.Errorf("/metrics exposition does not parse: %w", err)
	}
	bounds := obs.DefTimeBuckets
	counts := make([]int64, len(bounds)+1)
	prev := 0.0
	for i, bd := range bounds {
		v, ok := exp.Value("am_release_seconds_bucket", "le", strconv.FormatFloat(bd, 'g', -1, 64))
		if !ok {
			return nil, fmt.Errorf("/metrics: am_release_seconds bucket le=%g missing", bd)
		}
		counts[i] = int64(v - prev)
		prev = v
	}
	inf, ok := exp.Value("am_release_seconds_bucket", "le", "+Inf")
	if !ok {
		return nil, fmt.Errorf("/metrics: am_release_seconds +Inf bucket missing")
	}
	counts[len(bounds)] = int64(inf - prev)
	count, _ := exp.Value("am_release_seconds_count")
	return &latencyBenchResult{
		Count:     int64(count),
		P50Millis: obs.BucketQuantile(0.50, bounds, counts) * 1e3,
		P95Millis: obs.BucketQuantile(0.95, bounds, counts) * 1e3,
		P99Millis: obs.BucketQuantile(0.99, bounds, counts) * 1e3,
	}, nil
}

// streamBenchResult measures the streamed (NDJSON) release path against
// the buffered one on the same strategy: end-to-end throughput and peak
// bytes per release (cumulative HeapAlloc growth across one release with
// GC disabled — a ceiling on the true peak). Buffered numbers come from
// /answer when the workload fits its payload cap; past the cap the
// buffered peak is the synthetic floor the buffered path cannot avoid
// (the full answers slice plus the materialized response body) and its
// throughput is omitted.
type streamBenchResult struct {
	Rows                int                  `json:"rows"`
	ChunkSize           int                  `json:"chunkSize"`
	ReleasesPerSecond   float64              `json:"releasesPerSecond"`
	PeakBytesPerRelease int64                `json:"peakBytesPerRelease"`
	StreamedBytes       int64                `json:"streamedBytes"`
	Buffered            *bufferedBenchResult `json:"buffered,omitempty"`
}

// bufferedBenchResult is the buffered-path comparison point.
type bufferedBenchResult struct {
	ReleasesPerSecond   float64 `json:"releasesPerSecond,omitempty"`
	PeakBytesPerRelease int64   `json:"peakBytesPerRelease"`
	// Synthetic marks a computed (not measured) peak: workloads past the
	// buffered payload cap cannot be served buffered at all, so the floor
	// is rows×8 bytes of answers plus the materialized response body.
	Synthetic bool `json:"synthetic,omitempty"`
}

// pathBenchResult is a library-level micro-benchmark of one release
// inference path: one private release per op, measured with
// testing.Benchmark so ns/op and allocs/op come from the standard
// harness.
type pathBenchResult struct {
	Path        string  `json:"path"`
	Cells       int     `json:"cells"`
	NsPerOp     float64 `json:"nsPerOp"`
	AllocsPerOp float64 `json:"allocsPerOp"`
}

// benchClientResponse is the subset of the batch /release response the
// bench client decodes — and it decodes it only when a batch reports
// failures. On the happy path the client just scans the response tail for
// the failure counter: the client shares the machine with the server, so
// any JSON the client parses is time charged against the server's
// measured throughput.
type benchClientResponse struct {
	Results []struct {
		Status int    `json:"status"`
		Error  string `json:"error,omitempty"`
	} `json:"results"`
	Succeeded int `json:"succeeded"`
	Failed    int `json:"failed"`
}

// scanFailedTail extracts the trailing `"failed":N` counter from a batch
// /release body without parsing the answers. The second result is false
// when the tail does not look like a batch response.
func scanFailedTail(raw []byte) (int, bool) {
	tail := raw
	if len(tail) > 64 {
		tail = tail[len(tail)-64:]
	}
	const key = `"failed":`
	i := bytes.LastIndex(tail, []byte(key))
	if i < 0 {
		return 0, false
	}
	j := i + len(key)
	n := 0
	digits := 0
	for ; j < len(tail) && tail[j] >= '0' && tail[j] <= '9'; j++ {
		n = n*10 + int(tail[j]-'0')
		digits++
	}
	if digits == 0 {
		return 0, false
	}
	return n, true
}

// runReleaseBench drives the batch /release endpoint of an in-process
// release engine: design the spec once (cache-hot), register one dataset,
// then push `requests` releases through in batches of `batch` with the
// given server-side parallelism, measuring end-to-end handler throughput.
//
// The handler is driven in process rather than over a loopback socket: on
// a single-core host a TCP hop adds ~50µs of scheduler ping-pong per
// release (64KB socket-buffer context switches across a megabyte response
// body), which measures the kernel, not the engine. Both phases of a
// trajectory use the same transport, recorded in the Transport field.
func runReleaseBench(spec, mode string, requests, batch, parallelism int, phase, outPath string) error {
	h := server.New().Handler()

	post := func(path string, body any, out any) error {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(buf))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			return err
		}
		if rec.Code != http.StatusOK {
			return fmt.Errorf("%s: status %d", path, rec.Code)
		}
		return nil
	}

	var design map[string]any
	if err := post("/design", map[string]any{"workload": spec}, &design); err != nil {
		return err
	}
	strategyID, _ := design["strategy"].(string)
	cells := int(design["cells"].(float64))
	hist := make([]float64, cells)
	for i := range hist {
		hist[i] = float64(i % 17)
	}
	var reg map[string]any
	if err := post("/datasets", map[string]any{"name": "bench", "histogram": hist}, &reg); err != nil {
		return err
	}

	item := map[string]any{
		"strategy": strategyID, "dataset": "bench",
		"epsilon": 0.01, "delta": 1e-6, "mode": mode,
	}
	// Request bodies are identical per batch size; marshal each size once.
	makeBody := func(n int) ([]byte, error) {
		releases := make([]map[string]any, n)
		for i := range releases {
			releases[i] = item
		}
		return json.Marshal(map[string]any{"releases": releases, "parallelism": parallelism})
	}
	fullBody, err := makeBody(batch)
	if err != nil {
		return err
	}
	// One reused response buffer: a fresh multi-megabyte recorder per
	// batch would measure buffer growth, which real serving (a socket
	// write) never pays.
	respBody := bytes.NewBuffer(make([]byte, 0, 4<<20))

	// One untimed warm-up batch populates the server's pools and buffer
	// caches so the timed passes measure steady-state throughput — the
	// regime a long-lived release server actually runs in. The timed
	// section then runs three times and keeps the fastest pass: on shared
	// virtualized hosts the slower passes measure noisy neighbors, not the
	// engine, and the minimum is the standard noise-robust estimator for
	// throughput.
	{
		req := httptest.NewRequest(http.MethodPost, "/release", bytes.NewReader(fullBody))
		rec := &httptest.ResponseRecorder{Code: http.StatusOK, HeaderMap: http.Header{}, Body: respBody}
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			return fmt.Errorf("release bench warm-up: status %d", rec.Code)
		}
	}

	const passes = 3
	elapsed := 0.0
	for pass := 0; pass < passes; pass++ {
		start := time.Now()
		done := 0
		for done < requests {
			n := batch
			body := fullBody
			if requests-done < n {
				n = requests - done
				if body, err = makeBody(n); err != nil {
					return err
				}
			}
			req := httptest.NewRequest(http.MethodPost, "/release", bytes.NewReader(body))
			respBody.Reset()
			rec := &httptest.ResponseRecorder{Code: http.StatusOK, HeaderMap: http.Header{}, Body: respBody}
			h.ServeHTTP(rec, req)
			raw := respBody.Bytes()
			failed, ok := scanFailedTail(raw)
			if rec.Code != http.StatusOK || !ok || failed != 0 {
				// Something went wrong: pay for the full decode to report it.
				var out benchClientResponse
				if err := json.Unmarshal(raw, &out); err != nil {
					return fmt.Errorf("release bench: status %d, undecodable body: %v", rec.Code, err)
				}
				for _, res := range out.Results {
					if res.Status != http.StatusOK {
						return fmt.Errorf("release bench: %d of %d releases failed (first: status %d: %s)",
							out.Failed, n, res.Status, res.Error)
					}
				}
				return fmt.Errorf("release bench: status %d, %d of %d releases failed", rec.Code, out.Failed, n)
			}
			done += n
		}
		if sec := time.Since(start).Seconds(); pass == 0 || sec < elapsed {
			elapsed = sec
		}
	}

	res := releaseBenchResult{
		Spec:        spec,
		Mode:        mode,
		Requests:    requests,
		Batch:       batch,
		Parallelism: parallelism,
		Transport:   "in-process-handler",
		Seconds:     elapsed,
		Phase:       phase,
	}
	if elapsed > 0 {
		res.ReleasesPerSecond = float64(requests) / elapsed
	}
	lat, err := scrapeReleaseLatency(h)
	if err != nil {
		return fmt.Errorf("latency scrape: %w", err)
	}
	res.Latency = lat
	rows := 0
	if q, ok := design["queries"].(float64); ok {
		rows = int(q)
	}
	stream, err := runStreamBench(h, strategyID, rows)
	if err != nil {
		return fmt.Errorf("stream bench: %w", err)
	}
	res.Streaming = stream

	res.Paths = runPathBenches()
	fmt.Printf("release bench: %s (%s) — %d releases in %.3fs → %.1f releases/s\n",
		spec, mode, requests, elapsed, res.ReleasesPerSecond)
	fmt.Printf("  latency (scraped from /metrics, n=%d): p50 %.3fms  p95 %.3fms  p99 %.3fms\n",
		lat.Count, lat.P50Millis, lat.P95Millis, lat.P99Millis)
	fmt.Printf("  streaming: %d rows — %.1f releases/s, peak %d bytes/release (%d streamed bytes)\n",
		stream.Rows, stream.ReleasesPerSecond, stream.PeakBytesPerRelease, stream.StreamedBytes)
	if b := stream.Buffered; b != nil {
		kind := "measured"
		if b.Synthetic {
			kind = "synthetic floor; workload is past the buffered payload cap"
		}
		fmt.Printf("  buffered:  peak %d bytes/release (%s)", b.PeakBytesPerRelease, kind)
		if b.ReleasesPerSecond > 0 {
			fmt.Printf(", %.1f releases/s", b.ReleasesPerSecond)
		}
		fmt.Println()
	}
	for _, p := range res.Paths {
		fmt.Printf("  path %-10s n=%-5d %12.0f ns/op %8.1f allocs/op\n", p.Path, p.Cells, p.NsPerOp, p.AllocsPerOp)
	}
	if outPath == "" {
		return nil
	}
	return appendBenchResult(outPath, res)
}

// bufferedAnswerCap mirrors the server's maxAnswerRows: workloads past
// it can only be served streamed.
const bufferedAnswerCap = 1 << 20

// discardFlushWriter discards the response while counting it, so the
// MemStats deltas see only the server's own buffers, never a client-side
// accumulation of the body.
type discardFlushWriter struct {
	h      http.Header
	status int
	n      int64
}

func (w *discardFlushWriter) Header() http.Header {
	if w.h == nil {
		w.h = http.Header{}
	}
	return w.h
}

// WriteHeader records explicit status codes; handlers that write the
// body directly get net/http's implicit 200, mirrored in ok().
func (w *discardFlushWriter) WriteHeader(code int) { w.status = code }

func (w *discardFlushWriter) ok() bool { return w.status == 0 || w.status == http.StatusOK }
func (w *discardFlushWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}
func (w *discardFlushWriter) Flush() {}

// runStreamBench measures the streamed release path for one designed
// strategy against the registered "bench" dataset, plus the buffered
// comparison point.
func runStreamBench(h http.Handler, strategyID string, rows int) (*streamBenchResult, error) {
	body, err := json.Marshal(map[string]any{
		"strategy": strategyID, "dataset": "bench",
		"epsilon": 0.01, "delta": 1e-6, "stream": true,
	})
	if err != nil {
		return nil, err
	}
	run := func() (*discardFlushWriter, error) {
		w := &discardFlushWriter{}
		req := httptest.NewRequest(http.MethodPost, "/release", bytes.NewReader(body))
		h.ServeHTTP(w, req)
		if !w.ok() {
			return nil, fmt.Errorf("streamed release: status %d", w.status)
		}
		return w, nil
	}

	// Warm-up grows the mechanism scratch, chunk buffer and pooled record
	// buffer to steady state.
	warm, err := run()
	if err != nil {
		return nil, err
	}
	res := &streamBenchResult{Rows: rows, ChunkSize: mm.DefaultStreamChunk, StreamedBytes: warm.n}

	// Peak bytes: with GC off, the HeapAlloc delta across one release is
	// its cumulative allocation — a ceiling on the true peak.
	gcPrev := debug.SetGCPercent(-1)
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	if _, err := run(); err != nil {
		debug.SetGCPercent(gcPrev)
		return nil, err
	}
	runtime.ReadMemStats(&after)
	debug.SetGCPercent(gcPrev)
	res.PeakBytesPerRelease = int64(after.HeapAlloc) - int64(before.HeapAlloc)

	// Throughput: fastest of three timed passes (same noise-robust
	// estimator as the batch phase).
	k := 8
	if rows > bufferedAnswerCap {
		k = 3
	}
	best := 0.0
	for pass := 0; pass < 3; pass++ {
		start := time.Now()
		for i := 0; i < k; i++ {
			if _, err := run(); err != nil {
				return nil, err
			}
		}
		if sec := time.Since(start).Seconds(); pass == 0 || sec < best {
			best = sec
		}
	}
	if best > 0 {
		res.ReleasesPerSecond = float64(k) / best
	}

	buffered, err := runBufferedBench(h, strategyID, rows, res.StreamedBytes)
	if err != nil {
		return nil, err
	}
	res.Buffered = buffered
	return res, nil
}

// runBufferedBench measures the buffered /answer path on the same
// strategy when the workload fits its payload cap. Past the cap the
// buffered path cannot serve at all, so the peak is reported as the
// synthetic floor it could never beat: the answers slice plus the
// materialized response body.
func runBufferedBench(h http.Handler, strategyID string, rows int, streamedBytes int64) (*bufferedBenchResult, error) {
	if rows > bufferedAnswerCap {
		return &bufferedBenchResult{
			PeakBytesPerRelease: int64(rows)*8 + streamedBytes,
			Synthetic:           true,
		}, nil
	}
	body, err := json.Marshal(map[string]any{
		"strategy": strategyID, "dataset": "bench",
		"epsilon": 0.01, "delta": 1e-6, "mode": "answers",
	})
	if err != nil {
		return nil, err
	}
	run := func() (*discardFlushWriter, error) {
		w := &discardFlushWriter{}
		req := httptest.NewRequest(http.MethodPost, "/answer", bytes.NewReader(body))
		h.ServeHTTP(w, req)
		if !w.ok() {
			return nil, fmt.Errorf("buffered release: status %d", w.status)
		}
		return w, nil
	}
	if _, err := run(); err != nil {
		return nil, err
	}
	res := &bufferedBenchResult{}

	gcPrev := debug.SetGCPercent(-1)
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	if _, err := run(); err != nil {
		debug.SetGCPercent(gcPrev)
		return nil, err
	}
	runtime.ReadMemStats(&after)
	debug.SetGCPercent(gcPrev)
	res.PeakBytesPerRelease = int64(after.HeapAlloc) - int64(before.HeapAlloc)

	const k = 8
	best := 0.0
	for pass := 0; pass < 3; pass++ {
		start := time.Now()
		for i := 0; i < k; i++ {
			if _, err := run(); err != nil {
				return nil, err
			}
		}
		if sec := time.Since(start).Seconds(); pass == 0 || sec < best {
			best = sec
		}
	}
	if best > 0 {
		res.ReleasesPerSecond = float64(k) / best
	}
	return res, nil
}

// runPathBenches measures one library-level release per inference path —
// dense-pinv, CGLS (matrix-free), normal-CG and sharded — on a seeded
// noise stream, reporting ns/op and allocs/op for each. The first three
// use the scratch-pooled release entry points the server's steady state
// runs on.
func runPathBenches() []pathBenchResult {
	const n = 256
	priv := mm.Privacy{Epsilon: 0.5, Delta: 1e-4}
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i % 17)
	}
	tree := strategy.HierarchicalOperator(domain.MustShape(n), 2)
	dense := linalg.ToDense(tree)

	var out []pathBenchResult
	bench := func(path string, cells int, m *mm.Mechanism, data []float64) {
		r := rand.New(rand.NewSource(7))
		sc := m.NewScratch()
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := m.EstimateGaussianInto(sc, data, priv, r); err != nil {
					b.Fatal(err)
				}
			}
		})
		out = append(out, pathBenchResult{
			Path:        path,
			Cells:       cells,
			NsPerOp:     float64(res.NsPerOp()),
			AllocsPerOp: float64(res.AllocsPerOp()),
		})
	}

	if m, err := mm.NewMechanismInference(dense, mm.InferDensePinv); err == nil {
		bench("pinv", n, m, x)
	}
	if m, err := mm.NewMechanismInference(tree, mm.InferCGLS); err == nil {
		bench("cgls", n, m, x)
	}
	if m, err := mm.NewMechanismInference(dense, mm.InferNormalCG); err == nil {
		bench("normal-cg", n, m, x)
	}
	if m, err := benchShardedMechanism(n); err == nil {
		x2 := make([]float64, 2*n)
		for i := range x2 {
			x2[i] = float64(i % 17)
		}
		bench("sharded", 2*n, m, x2)
	}
	return out
}

// benchShardedMechanism builds a two-shard cell-partition mechanism over
// 2n cells, each shard measuring its half with a hierarchical tree.
func benchShardedMechanism(n int) (*mm.Mechanism, error) {
	shardFor := func(offset int) (mm.Shard, error) {
		tree := strategy.HierarchicalOperator(domain.MustShape(n), 2)
		mech, err := mm.NewMechanismInference(tree, mm.InferCGLS)
		if err != nil {
			return mm.Shard{}, err
		}
		idx := make([]int, n)
		for i := range idx {
			idx[i] = offset + i
		}
		return mm.Shard{
			Mechanism: mech,
			Project:   linalg.PermuteRows(linalg.Eye(2*n), idx),
			Workload:  workload.Identity(domain.MustShape(n)),
			Segments:  []mm.RowSegment{{Start: offset, Len: n}},
		}, nil
	}
	a, err := shardFor(0)
	if err != nil {
		return nil, err
	}
	b, err := shardFor(n)
	if err != nil {
		return nil, err
	}
	return mm.NewShardedMechanism(nil, []mm.Shard{a, b}, 1)
}

// appendBenchResult appends one measurement to a JSON-array trajectory
// file, creating it when absent. Entries already in the file are kept
// verbatim, so one trajectory can mix measurement shapes across PRs.
func appendBenchResult(path string, res any) error {
	var results []json.RawMessage
	if raw, err := os.ReadFile(path); err == nil {
		// A corrupt or foreign file should not be silently destroyed.
		if err := json.Unmarshal(raw, &results); err != nil {
			return fmt.Errorf("bench trajectory %s exists but is not a result array: %v", path, err)
		}
	}
	entry, err := json.Marshal(res)
	if err != nil {
		return err
	}
	results = append(results, entry)
	out, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
