// Command ambench regenerates the tables and figures of Li & Miklau,
// "An Adaptive Mechanism for Accurate Query Answering under Differential
// Privacy" (VLDB 2012).
//
// Usage:
//
//	ambench -exp fig3a                 # one experiment at medium scale
//	ambench -exp all -scale full       # everything at paper scale (slow)
//	ambench -list                      # show experiment ids
//
// Each experiment prints one or more tables mirroring the corresponding
// artifact in the paper's Sec 5. See EXPERIMENTS.md for a paper-vs-measured
// summary.
//
// A serving-throughput mode benchmarks the release engine's batch
// /release endpoint against an in-process server and appends the
// measurement to a BENCH_*.json trajectory:
//
//	ambench -releasebench allrange:1024 -requests 512 -benchout BENCH_release.json
//
// A fleet mode benchmarks the same sharded workload through a
// coordinator/worker fleet on loopback against a single process:
//
//	ambench -fleetbench marginals:1:64x64 -fleetworkers 2
package main

import (
	"flag"
	"fmt"
	"os"

	"adaptivemm/internal/experiments"
	"adaptivemm/internal/mm"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment id or 'all'")
		scale  = flag.String("scale", "medium", "small | medium | full (paper sizes)")
		eps    = flag.Float64("eps", 0.5, "privacy parameter ε")
		delta  = flag.Float64("delta", 1e-4, "privacy parameter δ")
		seed   = flag.Int64("seed", 1, "random seed for workload sampling and noise")
		trials = flag.Int("trials", 3, "Monte-Carlo trials for relative-error experiments")
		list   = flag.Bool("list", false, "list experiment ids and exit")

		releaseBench = flag.String("releasebench", "", "workload spec: benchmark the batch /release endpoint instead of running experiments")
		requests     = flag.Int("requests", 256, "total releases for -releasebench")
		batch        = flag.Int("batch", 64, "releases per /release call for -releasebench")
		parallel     = flag.Int("parallel", 8, "server-side parallelism for -releasebench")
		benchMode    = flag.String("benchmode", "estimate", "release mode for -releasebench: answers | estimate")
		benchOut     = flag.String("benchout", "BENCH_release.json", "trajectory file for -releasebench results (empty to skip writing)")
		benchPhase   = flag.String("benchphase", "", "optional label recorded with -releasebench results (e.g. pre-optimization)")

		planBench    = flag.String("planbench", "", "workload spec (or 'all'): benchmark planner generator selection and design latency")
		planBenchOut = flag.String("planbenchout", "BENCH_plan.json", "trajectory file for -planbench results (empty to skip writing)")

		fleetBench   = flag.String("fleetbench", "", "sharded workload spec: benchmark distributed vs single-process release throughput")
		fleetWorkers = flag.Int("fleetworkers", 2, "loopback worker count for -fleetbench")
	)
	flag.Parse()

	if *fleetBench != "" {
		if err := runFleetBench(*fleetBench, *requests, *batch, *parallel, *fleetWorkers, *benchPhase, *benchOut); err != nil {
			fmt.Fprintf(os.Stderr, "ambench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *planBench != "" {
		if err := runPlanBench(*planBench, *planBenchOut); err != nil {
			fmt.Fprintf(os.Stderr, "ambench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *releaseBench != "" {
		if err := runReleaseBench(*releaseBench, *benchMode, *requests, *batch, *parallel, *benchPhase, *benchOut); err != nil {
			fmt.Fprintf(os.Stderr, "ambench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-10s %s\n", id, experiments.Title(id))
		}
		return
	}

	cfg := experiments.Config{
		Scale:   *scale,
		Privacy: mm.Privacy{Epsilon: *eps, Delta: *delta},
		Seed:    *seed,
		Trials:  *trials,
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		tables, err := experiments.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ambench: %s: %v\n", id, err)
			os.Exit(1)
		}
		for _, t := range tables {
			if err := t.Format(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "ambench: %v\n", err)
				os.Exit(1)
			}
		}
	}
}
