package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	"adaptivemm/internal/server"
)

// fleetBenchResult is one distributed-vs-single-process throughput
// comparison of the sharded release path, appended to the same
// BENCH_*.json trajectory as the batch releasebench entries. The fleet
// leg runs a coordinator routing per-shard inference to real worker
// processes over loopback HTTP; the single leg runs the identical
// workload in one process. RemoteShards and Degraded come from the
// coordinator's /fleet counters and prove the distributed leg actually
// went remote (Degraded must be 0 for a clean measurement).
type fleetBenchResult struct {
	Spec         string        `json:"spec"`
	Mode         string        `json:"mode"`
	Phase        string        `json:"phase,omitempty"`
	Requests     int           `json:"requests"`
	Batch        int           `json:"batch"`
	Parallelism  int           `json:"parallelism"`
	Workers      int           `json:"workers"`
	RemoteShards int64         `json:"remoteShards"`
	Degraded     int64         `json:"degraded"`
	Distributed  fleetBenchLeg `json:"distributed"`
	Single       fleetBenchLeg `json:"single"`
}

// fleetBenchLeg is one side of the comparison.
type fleetBenchLeg struct {
	Seconds           float64 `json:"seconds"`
	ReleasesPerSecond float64 `json:"releasesPerSecond"`
}

// benchSwapHandler lets an httptest server exist before the server
// behind it does — the coordinator needs worker URLs at Open, and the
// workers need the coordinator URL at Open, so somebody's socket has to
// come up first with no handler behind it.
type benchSwapHandler struct {
	mu sync.RWMutex
	h  http.Handler
}

func (s *benchSwapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	h := s.h
	s.mu.RUnlock()
	if h == nil {
		http.Error(w, "fleet bench: worker not wired yet", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

func (s *benchSwapHandler) set(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

// runFleetBench measures sharded release throughput through a real
// coordinator/worker fleet on loopback against the identical workload
// served single-process, and appends the pair to the trajectory file.
// The release requests themselves are driven in process against the
// coordinator's handler (same transport convention as releasebench);
// only the per-shard solves and the workers' plan fetches cross the
// loopback sockets, so the delta between the two legs is the fleet's
// wire cost.
func runFleetBench(spec string, requests, batch, parallelism, workers int, phase, outPath string) error {
	if workers < 1 {
		return fmt.Errorf("fleet bench needs at least one worker, got %d", workers)
	}
	quiet := func(string, ...any) {}

	// Worker sockets first (the coordinator's Open wants their URLs),
	// worker servers last (their Open wants the coordinator's URL).
	swaps := make([]*benchSwapHandler, workers)
	urls := make([]string, workers)
	for i := range swaps {
		swaps[i] = &benchSwapHandler{}
		ts := httptest.NewServer(swaps[i])
		defer ts.Close()
		urls[i] = ts.URL
	}
	coord, err := server.Open(server.Options{
		FleetWorkers:       urls,
		FleetProbeInterval: -1, // no faults injected; backoff expiry suffices
		Logf:               quiet,
	})
	if err != nil {
		return err
	}
	defer coord.Close()
	coordTS := httptest.NewServer(coord.Handler())
	defer coordTS.Close()
	for i := range swaps {
		w, err := server.Open(server.Options{CoordinatorURL: coordTS.URL, Logf: quiet})
		if err != nil {
			return err
		}
		defer w.Close()
		swaps[i].set(w.Handler())
	}

	distributed, err := benchShardedReleases(coord.Handler(), spec, requests, batch, parallelism)
	if err != nil {
		return fmt.Errorf("distributed leg: %w", err)
	}

	// The coordinator's own counters are the proof the leg went remote.
	var fleetStat struct {
		Shards struct {
			Remote   int64 `json:"remote"`
			Degraded int64 `json:"degraded"`
		} `json:"shards"`
	}
	rec := httptest.NewRecorder()
	coord.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/fleet", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &fleetStat); err != nil {
		return fmt.Errorf("decoding /fleet: %w", err)
	}
	if fleetStat.Shards.Remote == 0 {
		return fmt.Errorf("fleet bench served no shards remotely; measurement is not distributed")
	}

	single := server.New()
	defer single.Close()
	singleLeg, err := benchShardedReleases(single.Handler(), spec, requests, batch, parallelism)
	if err != nil {
		return fmt.Errorf("single-process leg: %w", err)
	}

	res := fleetBenchResult{
		Spec:         spec,
		Mode:         "fleetbench",
		Phase:        phase,
		Requests:     requests,
		Batch:        batch,
		Parallelism:  parallelism,
		Workers:      workers,
		RemoteShards: fleetStat.Shards.Remote,
		Degraded:     fleetStat.Shards.Degraded,
		Distributed:  distributed,
		Single:       singleLeg,
	}
	fmt.Printf("fleet bench: %s — %d releases, %d workers\n", spec, requests, workers)
	fmt.Printf("  distributed: %.3fs → %.1f releases/s (%d remote shards, %d degraded)\n",
		distributed.Seconds, distributed.ReleasesPerSecond, res.RemoteShards, res.Degraded)
	fmt.Printf("  single:      %.3fs → %.1f releases/s\n", singleLeg.Seconds, singleLeg.ReleasesPerSecond)
	if outPath == "" {
		return nil
	}
	return appendBenchResult(outPath, res)
}

// benchShardedReleases designs spec on h, requires the planner to have
// chosen the sharded generator (the comparison is meaningless
// otherwise), registers a dataset, and measures batch /release
// throughput in answers mode: fastest of three timed passes after one
// untimed warm-up, same estimator as releasebench.
func benchShardedReleases(h http.Handler, spec string, requests, batch, parallelism int) (fleetBenchLeg, error) {
	post := func(path string, body any, out any) error {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(buf))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			return err
		}
		if rec.Code != http.StatusOK {
			return fmt.Errorf("%s: status %d", path, rec.Code)
		}
		return nil
	}

	var design map[string]any
	if err := post("/design", map[string]any{"workload": spec}, &design); err != nil {
		return fleetBenchLeg{}, err
	}
	report, _ := design["planner"].(map[string]any)
	if gen, _ := report["generator"].(string); gen != "sharded" {
		return fleetBenchLeg{}, fmt.Errorf("spec %s chose generator %q; fleet bench needs a sharded plan", spec, gen)
	}
	strategyID, _ := design["strategy"].(string)
	cells := int(design["cells"].(float64))
	hist := make([]float64, cells)
	for i := range hist {
		hist[i] = float64(i % 17)
	}
	var reg map[string]any
	if err := post("/datasets", map[string]any{"name": "fleetbench", "histogram": hist}, &reg); err != nil {
		return fleetBenchLeg{}, err
	}

	item := map[string]any{
		"strategy": strategyID, "dataset": "fleetbench",
		"epsilon": 0.01, "delta": 1e-6, "mode": "answers",
	}
	makeBody := func(n int) ([]byte, error) {
		releases := make([]map[string]any, n)
		for i := range releases {
			releases[i] = item
		}
		return json.Marshal(map[string]any{"releases": releases, "parallelism": parallelism})
	}
	fullBody, err := makeBody(batch)
	if err != nil {
		return fleetBenchLeg{}, err
	}
	respBody := bytes.NewBuffer(make([]byte, 0, 1<<20))
	runBatch := func(body []byte, n int) error {
		req := httptest.NewRequest(http.MethodPost, "/release", bytes.NewReader(body))
		respBody.Reset()
		rec := &httptest.ResponseRecorder{Code: http.StatusOK, HeaderMap: http.Header{}, Body: respBody}
		h.ServeHTTP(rec, req)
		raw := respBody.Bytes()
		failed, ok := scanFailedTail(raw)
		if rec.Code != http.StatusOK || !ok || failed != 0 {
			var out benchClientResponse
			if err := json.Unmarshal(raw, &out); err != nil {
				return fmt.Errorf("status %d, undecodable body: %v", rec.Code, err)
			}
			for _, res := range out.Results {
				if res.Status != http.StatusOK {
					return fmt.Errorf("%d of %d releases failed (first: status %d: %s)",
						out.Failed, n, res.Status, res.Error)
				}
			}
			return fmt.Errorf("status %d, %d of %d releases failed", rec.Code, out.Failed, n)
		}
		return nil
	}

	// Warm-up: populates pools, and on the fleet leg makes the workers
	// fetch and cache the plan so the timed passes measure steady state.
	if err := runBatch(fullBody, batch); err != nil {
		return fleetBenchLeg{}, fmt.Errorf("warm-up: %w", err)
	}

	const passes = 3
	elapsed := 0.0
	for pass := 0; pass < passes; pass++ {
		start := time.Now()
		done := 0
		for done < requests {
			n := batch
			body := fullBody
			if requests-done < n {
				n = requests - done
				if body, err = makeBody(n); err != nil {
					return fleetBenchLeg{}, err
				}
			}
			if err := runBatch(body, n); err != nil {
				return fleetBenchLeg{}, err
			}
			done += n
		}
		if sec := time.Since(start).Seconds(); pass == 0 || sec < elapsed {
			elapsed = sec
		}
	}
	leg := fleetBenchLeg{Seconds: elapsed}
	if elapsed > 0 {
		leg.ReleasesPerSecond = float64(requests) / elapsed
	}
	return leg, nil
}
