// Command amdesign designs a matrix-mechanism strategy for a workload of
// linear counting queries and reports its expected error, optionally
// producing a differentially private release of a histogram.
//
// The workload comes either from a compact specification,
//
//	amdesign -workload allrange:8x16
//	amdesign -workload marginals:2:8x8x4
//
// or from a CSV file of query rows:
//
//	amdesign -workload-csv queries.csv -shape 8x16
//
// Add -data histogram.csv to produce one private release of the workload
// answers, and -strategy-out strategy.csv to save the designed strategy.
//
//	amdesign -workload allrange:8x16 -eps 0.5 -delta 1e-4 -data counts.csv
//
// Strategy selection goes through the unified cost-based planner: by
// default the planner picks the generator (exact eigen, separation,
// principal-vectors, closed-form marginals, hierarchical, identity) by
// expected error within the design budget; -generator forces one, and
// -max-design-ms / -latency-ms tighten the budget. -explain prints every
// candidate's admission outcome.
//
// Plans can be persisted and shipped: -save writes the designed plan as a
// plan-store entry (drop the file into an amserve -store directory and a
// server designing the same spec serves it from cache), and -load
// rehydrates a saved plan instead of designing, for offline inspection or
// release.
//
//	amdesign -workload allrange:64x64 -save allrange64.plan
//	amdesign -load allrange64.plan -data counts.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"adaptivemm/internal/core"
	"adaptivemm/internal/linalg"
	"adaptivemm/internal/mm"
	"adaptivemm/internal/planner"
	"adaptivemm/internal/planstore"
	"adaptivemm/internal/wio"
	"adaptivemm/internal/workload"
)

func main() {
	var (
		spec        = flag.String("workload", "", "workload spec, e.g. allrange:8x16, marginals:2:8x8x4, prefix:256, fig1")
		csvPath     = flag.String("workload-csv", "", "CSV file of query rows (one query per line)")
		shapeStr    = flag.String("shape", "", "domain shape for -workload-csv, e.g. 8x16")
		eps         = flag.Float64("eps", 0.5, "privacy parameter ε")
		delta       = flag.Float64("delta", 1e-4, "privacy parameter δ")
		seed        = flag.Int64("seed", 1, "random seed")
		dataPath    = flag.String("data", "", "histogram CSV; produces one private release")
		stratOut    = flag.String("strategy-out", "", "write the designed strategy matrix to this CSV file")
		generator   = flag.String("generator", "", "force a planner generator (eigen, eigen-separation, principal-vectors, marginals, hierarchical, identity)")
		separation  = flag.Int("separation", 0, "use eigen-query separation with this group size")
		principal   = flag.Int("principal", 0, "use the principal-vector optimization with k vectors")
		firstOrder  = flag.Bool("first-order", false, "force the scalable first-order solver")
		maxDesignMS = flag.Int64("max-design-ms", 0, "design-time budget in milliseconds (0 = planner default)")
		latencyMS   = flag.Int64("latency-ms", 0, "per-release latency target in milliseconds")
		explain     = flag.Bool("explain", false, "print every generator's admission outcome")
		savePath    = flag.String("save", "", "write the designed plan to this file (plan-store entry; ship it into an amserve -store directory)")
		loadPath    = flag.String("load", "", "load a saved plan instead of designing (workload flags must be absent)")
	)
	flag.Parse()

	r := rand.New(rand.NewSource(*seed))
	p := mm.Privacy{Epsilon: *eps, Delta: *delta}
	if err := p.Validate(); err != nil {
		fail(err)
	}

	var w *workload.Workload
	var plan *planner.Plan
	if *loadPath != "" {
		if *spec != "" || *csvPath != "" {
			fail(fmt.Errorf("amdesign: -load rehydrates a saved plan; drop -workload/-workload-csv"))
		}
		if *savePath != "" {
			fail(fmt.Errorf("amdesign: -save and -load together would only copy the file"))
		}
		blob, err := os.ReadFile(*loadPath)
		if err != nil {
			fail(err)
		}
		var meta planstore.Meta
		if plan, meta, err = planstore.DecodeEntry(blob); err != nil {
			fail(fmt.Errorf("amdesign: %s: %w", *loadPath, err))
		}
		w = plan.Workload
		fmt.Printf("loaded plan:     %s (key %s, saved %s by %s)\n",
			*loadPath, meta.Key, meta.SavedAt.Format(time.RFC3339), meta.LibVersion)
	} else {
		var err error
		if w, err = loadWorkload(*spec, *csvPath, *shapeStr, r); err != nil {
			fail(err)
		}
	}

	// Every entry point plans through the same pipeline the library API
	// and the release-engine server use.
	hints := planner.Hints{
		Privacy:       p,
		Generator:     *generator,
		FirstOrder:    *firstOrder,
		MaxDesignTime: time.Duration(*maxDesignMS) * time.Millisecond,
		LatencyTarget: time.Duration(*latencyMS) * time.Millisecond,
		AnalysisCap:   2048,
	}
	switch {
	case *separation > 0:
		hints.Generator = "eigen-separation"
		hints.GroupSize = *separation
	case *principal > 0:
		hints.Generator = "principal-vectors"
		hints.PrincipalK = *principal
	}
	if plan == nil {
		pl := planner.New(planner.Config{})
		var err error
		if plan, err = pl.Plan(w, hints); err != nil {
			fail(err)
		}
	}

	if *savePath != "" {
		// Spec-described workloads get the canonical server cache key, so a
		// shipped plan is found by /design of the same spec; CSV workloads
		// get a file-scoped key (loadable, but never a spec cache hit).
		key := planstore.CanonicalKey(*spec, *seed, hints.Fingerprint())
		if *spec == "" {
			key = "file:" + *csvPath + "|" + hints.Fingerprint()
		}
		blob, _, err := planstore.EncodeEntry(key, plan, time.Now())
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*savePath, blob, 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("plan saved to %s (%d bytes, key %s)\n", *savePath, len(blob), key)
	}

	fmt.Printf("workload:        %s (%d queries, %d cells)\n", w.Name(), w.NumQueries(), w.Cells())
	form := "dense"
	if plan.Dense == nil {
		form = "operator (matrix-free)"
	}
	fmt.Printf("strategy:        %d queries, %s\n", plan.Op.Rows(), form)
	fmt.Printf("planner:         %s (modeled cost %.3g, design %s, inference %s)\n",
		plan.Generator, plan.ModeledCost, plan.DesignTime.Round(time.Microsecond), plan.Inference)
	fmt.Printf("                 %s\n", plan.Note)
	for i, s := range plan.Shards {
		where := s.Kind
		if len(s.Attrs) > 0 {
			where = fmt.Sprintf("attrs %v", s.Attrs)
		}
		fmt.Printf("  shard %-2d       %s: %s (%d cells, %d queries, inference %s, modeled cost %.3g)\n",
			i, where, s.Generator, s.Cells, s.Queries, s.Inference, s.ModeledCost)
	}
	if *explain {
		for _, d := range plan.Decisions {
			verdict := "rejected"
			if d.Selected {
				verdict = "selected"
			} else if d.Admitted {
				verdict = "admitted"
			}
			fmt.Printf("  %-18s %-8s %s\n", d.Generator, verdict, d.Reason)
		}
	}
	e, err := plan.ExpectedError(p)
	if err != nil {
		fail(err)
	}
	if e > 0 {
		fmt.Printf("expected RMSE:   %.4g  (ε=%g, δ=%g)\n", e, *eps, *delta)
		lb := plan.LowerBound(p)
		if lb == 0 {
			// Generators without eigenvalues (hierarchical, identity)
			// still deserve the ratio report: the Thm 2 bound depends on
			// the workload alone, and the domain already passed the
			// analysis cap to get here.
			if lb, err = mm.LowerBound(w, p); err != nil {
				fail(err)
			}
		}
		if lb > 0 {
			fmt.Printf("lower bound:     %.4g  (ratio %.3f)\n", lb, e/lb)
		}
	} else {
		fmt.Printf("expected RMSE:   skipped (%d cells past the analysis cap; analysis needs O(n³) dense algebra)\n", w.Cells())
	}
	if len(plan.Eigenvalues) > 0 {
		fmt.Printf("Thm 3 ratio cap: %.3f\n", core.ApproxRatioBound(plan.Eigenvalues))
	}

	if *stratOut != "" {
		if plan.Dense == nil {
			fail(fmt.Errorf("amdesign: structured strategy is matrix-free; -strategy-out requires a dense design (smaller domain)"))
		}
		if err := writeStrategy(*stratOut, plan.Dense); err != nil {
			fail(err)
		}
		fmt.Printf("strategy written to %s\n", *stratOut)
	}

	if *dataPath != "" {
		if err := release(w, plan.Mechanism, *dataPath, p, r); err != nil {
			fail(err)
		}
	}
}

func loadWorkload(spec, csvPath, shapeStr string, r *rand.Rand) (*workload.Workload, error) {
	switch {
	case spec != "" && csvPath != "":
		return nil, fmt.Errorf("amdesign: use either -workload or -workload-csv, not both")
	case spec != "":
		return wio.ParseWorkloadSpec(spec, r)
	case csvPath != "":
		if shapeStr == "" {
			return nil, fmt.Errorf("amdesign: -workload-csv requires -shape")
		}
		shape, err := wio.ParseShape(shapeStr)
		if err != nil {
			return nil, err
		}
		f, err := os.Open(csvPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		m, err := wio.ReadMatrixCSV(f)
		if err != nil {
			return nil, err
		}
		return workload.FromMatrix(csvPath, shape, m), nil
	default:
		return nil, fmt.Errorf("amdesign: provide -workload or -workload-csv (try -workload fig1)")
	}
}

func writeStrategy(path string, a *linalg.Matrix) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return wio.WriteMatrixCSV(f, a)
}

func release(w *workload.Workload, mech *mm.Mechanism, dataPath string, p mm.Privacy, r *rand.Rand) error {
	f, err := os.Open(dataPath)
	if err != nil {
		return err
	}
	defer f.Close()
	x, err := wio.ReadVectorCSV(f)
	if err != nil {
		return err
	}
	if len(x) != w.Cells() {
		return fmt.Errorf("amdesign: histogram has %d cells, workload expects %d", len(x), w.Cells())
	}
	// Stream the release chunk by chunk: noise and inference run once,
	// then answers are produced into one reused chunk buffer — memory
	// stays bounded however many queries the workload answers.
	st, err := mech.StreamRelease(w, x, p, r, 0)
	if err != nil {
		return err
	}
	defer st.Close()
	fmt.Println("private answers:")
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	for {
		off, chunk, ok := st.Next()
		if !ok {
			return nil
		}
		for i, v := range chunk {
			fmt.Fprintf(out, "%d,%.6g\n", off+i, v)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
