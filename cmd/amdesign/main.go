// Command amdesign designs a matrix-mechanism strategy for a workload of
// linear counting queries and reports its expected error, optionally
// producing a differentially private release of a histogram.
//
// The workload comes either from a compact specification,
//
//	amdesign -workload allrange:8x16
//	amdesign -workload marginals:2:8x8x4
//
// or from a CSV file of query rows:
//
//	amdesign -workload-csv queries.csv -shape 8x16
//
// Add -data histogram.csv to produce one private release of the workload
// answers, and -strategy-out strategy.csv to save the designed strategy.
//
//	amdesign -workload allrange:8x16 -eps 0.5 -delta 1e-4 -data counts.csv
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"adaptivemm/internal/core"
	"adaptivemm/internal/linalg"
	"adaptivemm/internal/mm"
	"adaptivemm/internal/wio"
	"adaptivemm/internal/workload"
)

func main() {
	var (
		spec       = flag.String("workload", "", "workload spec, e.g. allrange:8x16, marginals:2:8x8x4, prefix:256, fig1")
		csvPath    = flag.String("workload-csv", "", "CSV file of query rows (one query per line)")
		shapeStr   = flag.String("shape", "", "domain shape for -workload-csv, e.g. 8x16")
		eps        = flag.Float64("eps", 0.5, "privacy parameter ε")
		delta      = flag.Float64("delta", 1e-4, "privacy parameter δ")
		seed       = flag.Int64("seed", 1, "random seed")
		dataPath   = flag.String("data", "", "histogram CSV; produces one private release")
		stratOut   = flag.String("strategy-out", "", "write the designed strategy matrix to this CSV file")
		separation = flag.Int("separation", 0, "use eigen-query separation with this group size")
		principal  = flag.Int("principal", 0, "use the principal-vector optimization with k vectors")
		firstOrder = flag.Bool("first-order", false, "force the scalable first-order solver")
	)
	flag.Parse()

	r := rand.New(rand.NewSource(*seed))
	w, err := loadWorkload(*spec, *csvPath, *shapeStr, r)
	if err != nil {
		fail(err)
	}
	p := mm.Privacy{Epsilon: *eps, Delta: *delta}
	if err := p.Validate(); err != nil {
		fail(err)
	}

	opts := core.Options{}
	if *firstOrder {
		opts.Solver = core.SolverFirstOrder
	}
	var res *core.Result
	switch {
	case *separation > 0:
		res, err = core.EigenSeparation(w, *separation, opts)
	case *principal > 0:
		res, err = core.PrincipalVectors(w, *principal, opts)
	default:
		res, err = core.Design(w, opts)
	}
	if err != nil {
		fail(err)
	}

	fmt.Printf("workload:        %s (%d queries, %d cells)\n", w.Name(), w.NumQueries(), w.Cells())
	form := "dense"
	if res.Strategy == nil {
		form = "operator (matrix-free)"
	}
	fmt.Printf("strategy:        %d queries, rank %d, %s\n", res.Op.Rows(), res.Rank, form)
	// The analytic error and lower bound need a dense n×n Gram and an
	// O(n³) eigendecomposition — skip them past the analysis cap so huge
	// matrix-free designs stay matrix-free.
	const analysisCap = 2048
	if w.Cells() <= analysisCap {
		e, err := mm.Error(w, res.Op, p)
		if err != nil {
			fail(err)
		}
		lb, err := mm.LowerBound(w, p)
		if err != nil {
			fail(err)
		}
		fmt.Printf("expected RMSE:   %.4g  (ε=%g, δ=%g)\n", e, *eps, *delta)
		fmt.Printf("lower bound:     %.4g  (ratio %.3f)\n", lb, e/lb)
	} else {
		fmt.Printf("expected RMSE:   skipped (%d cells > %d; analysis needs O(n³) dense algebra)\n", w.Cells(), analysisCap)
	}
	if len(res.Eigenvalues) > 0 {
		fmt.Printf("Thm 3 ratio cap: %.3f\n", core.ApproxRatioBound(res.Eigenvalues))
	}

	if *stratOut != "" {
		if res.Strategy == nil {
			fail(fmt.Errorf("amdesign: structured strategy is matrix-free; -strategy-out requires a dense design (smaller domain)"))
		}
		if err := writeStrategy(*stratOut, res.Strategy); err != nil {
			fail(err)
		}
		fmt.Printf("strategy written to %s\n", *stratOut)
	}

	if *dataPath != "" {
		if err := release(w, res.Op, *dataPath, p, r); err != nil {
			fail(err)
		}
	}
}

func loadWorkload(spec, csvPath, shapeStr string, r *rand.Rand) (*workload.Workload, error) {
	switch {
	case spec != "" && csvPath != "":
		return nil, fmt.Errorf("amdesign: use either -workload or -workload-csv, not both")
	case spec != "":
		return wio.ParseWorkloadSpec(spec, r)
	case csvPath != "":
		if shapeStr == "" {
			return nil, fmt.Errorf("amdesign: -workload-csv requires -shape")
		}
		shape, err := wio.ParseShape(shapeStr)
		if err != nil {
			return nil, err
		}
		f, err := os.Open(csvPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		m, err := wio.ReadMatrixCSV(f)
		if err != nil {
			return nil, err
		}
		return workload.FromMatrix(csvPath, shape, m), nil
	default:
		return nil, fmt.Errorf("amdesign: provide -workload or -workload-csv (try -workload fig1)")
	}
}

func writeStrategy(path string, a *linalg.Matrix) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return wio.WriteMatrixCSV(f, a)
}

func release(w *workload.Workload, a linalg.Operator, dataPath string, p mm.Privacy, r *rand.Rand) error {
	f, err := os.Open(dataPath)
	if err != nil {
		return err
	}
	defer f.Close()
	x, err := wio.ReadVectorCSV(f)
	if err != nil {
		return err
	}
	if len(x) != w.Cells() {
		return fmt.Errorf("amdesign: histogram has %d cells, workload expects %d", len(x), w.Cells())
	}
	mech, err := mm.NewMechanismOp(a)
	if err != nil {
		return err
	}
	ans, err := mech.AnswerGaussian(w, x, p, r)
	if err != nil {
		return err
	}
	fmt.Println("private answers:")
	for i, v := range ans {
		fmt.Printf("%d,%.6g\n", i, v)
	}
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
