// Command amlint runs the engine's static-analysis suite — the
// mechanized form of the privacy, budget and pooling invariants the
// codebase's correctness arguments rest on. CI runs it as a required
// job; a finding is a build failure.
//
//	amlint [-analyzers noiserand,budgetsettle,...] [-list] [packages]
//
// Packages default to ./... (every package under the current module,
// testdata excluded). Each finding prints as
//
//	file:line:col: [analyzer] message
//
// and the exit status is 1 when any finding survives. Intentional
// exceptions are annotated in the source with
//
//	//lint:allow <reason>
//
// on (or directly above) the flagged line; the reason is mandatory. See
// docs/STATIC_ANALYSIS.md for each analyzer's invariant, the past bug
// that motivated it, and when suppression is acceptable.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"adaptivemm/internal/analysis"
)

func main() {
	names := flag.String("analyzers", "", "comma-separated analyzers to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	analyzers, err := analysis.ByName(*names)
	if err != nil {
		fmt.Fprintln(os.Stderr, "amlint:", err)
		os.Exit(2)
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "amlint:", err)
		os.Exit(2)
	}
	dirs, err := expandPatterns(root, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "amlint:", err)
		os.Exit(2)
	}

	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "amlint:", err)
		os.Exit(2)
	}
	findings := 0
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "amlint:", err)
			os.Exit(2)
		}
		diags, err := analysis.Run(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "amlint:", err)
			os.Exit(2)
		}
		for _, d := range diags {
			rel := d.Pos.Filename
			if r, err := filepath.Rel(root, rel); err == nil && !strings.HasPrefix(r, "..") {
				rel = r
			}
			fmt.Printf("%s:%d:%d: [%s] %s\n", rel, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "amlint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

// moduleRoot finds the nearest directory holding go.mod at or above the
// working directory.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod at or above the working directory")
		}
		dir = parent
	}
}

// expandPatterns resolves command-line package arguments: "./..." (or no
// arguments) walks the module; anything else is a package directory.
func expandPatterns(root string, args []string) ([]string, error) {
	if len(args) == 0 {
		return analysis.PackageDirs(root)
	}
	var dirs []string
	for _, a := range args {
		if a == "./..." || a == "..." {
			walked, err := analysis.PackageDirs(root)
			if err != nil {
				return nil, err
			}
			dirs = append(dirs, walked...)
			continue
		}
		if rest, ok := strings.CutSuffix(a, "/..."); ok {
			walked, err := analysis.PackageDirs(filepath.Join(root, rest))
			if err != nil {
				return nil, err
			}
			dirs = append(dirs, walked...)
			continue
		}
		dirs = append(dirs, a)
	}
	return dirs, nil
}
