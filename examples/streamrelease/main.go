// Streamed release: answering a workload too large for any buffered
// response, in bounded memory, over the NDJSON streaming form of
// POST /release.
//
// The walkthrough: design a strategy for all range queries over 512
// cells (131,328 answers), then request the release with "stream": true.
// The server runs noise and inference once, and the answers arrive as
// newline-delimited JSON records of one chunk each under chunked
// transfer encoding — per-connection memory is one chunk buffer, not
// O(answers). The client reads the stream incrementally, verifies chunk
// offsets are contiguous, and checks the trailing record's count and
// FNV-64a checksum, which is how a truncated or corrupted stream is
// detected (a dropped connection otherwise looks like a clean EOF at a
// record boundary).
//
// Run with: go run ./examples/streamrelease
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"math"
	"net/http"
	"net/http/httptest"

	"adaptivemm/internal/server"
)

// record is the union of the three NDJSON record shapes: the metadata
// header, one answer chunk, and the trailer.
type record struct {
	Stream    string    `json:"stream"`
	Strategy  string    `json:"strategy"`
	Rows      int       `json:"rows"`
	ChunkSize int       `json:"chunkSize"`
	Offset    *int      `json:"offset"`
	Answers   []float64 `json:"answers"`
	Done      bool      `json:"done"`
	Count     int       `json:"count"`
	Checksum  string    `json:"checksum"`
}

// fnvFloats folds answers into an FNV-64a state over each float64's
// IEEE-754 bits, little-endian — the checksum the trailer carries.
func fnvFloats(sum uint64, vals []float64) uint64 {
	const prime = 1099511628211
	for _, v := range vals {
		bits := math.Float64bits(v)
		for i := 0; i < 64; i += 8 {
			sum ^= uint64(byte(bits >> i))
			sum *= prime
		}
	}
	return sum
}

func post(ts *httptest.Server, path string, body any) *http.Response {
	buf, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		log.Fatal(err)
	}
	return resp
}

func main() {
	ts := httptest.NewServer(server.New().Handler())
	defer ts.Close()

	// Design once; the strategy handle addresses the plan for releases.
	resp := post(ts, "/design", map[string]any{"workload": "allrange:512"})
	var design struct {
		Strategy string `json:"strategy"`
		Queries  int    `json:"queries"`
		Cells    int    `json:"cells"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&design); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("designed %s: %d range queries over %d cells\n",
		design.Strategy, design.Queries, design.Cells)

	hist := make([]float64, design.Cells)
	for i := range hist {
		hist[i] = float64((i * 7) % 23)
	}

	// One streamed release. The histogram rides inline (an ad-hoc
	// dataset); registered datasets work the same way.
	resp = post(ts, "/release", map[string]any{
		"strategy": design.Strategy, "dataset": "counts",
		"histogram": hist, "epsilon": 0.5, "delta": 1e-4,
		"stream": true, "chunkSize": 8192,
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("streamed release: status %d", resp.StatusCode)
	}
	fmt.Printf("response: %s via transfer-encoding %v\n",
		resp.Header.Get("Content-Type"), resp.TransferEncoding)

	// Read the stream record by record; memory here is one chunk, same
	// as on the server.
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 8<<20)
	sum := uint64(14695981039346656037)
	received, chunks := 0, 0
	var trailer *record
	for sc.Scan() {
		var rec record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			log.Fatalf("after %d answers: %v (truncated mid-record?)", received, err)
		}
		switch {
		case rec.Stream != "":
			fmt.Printf("metadata: %d rows in chunks of %d\n", rec.Rows, rec.ChunkSize)
		case rec.Done:
			trailer = &rec
		default:
			if rec.Offset == nil || *rec.Offset != received {
				log.Fatalf("chunk out of order at %d", received)
			}
			received += len(rec.Answers)
			chunks++
			sum = fnvFloats(sum, rec.Answers)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}

	// The trailer is the integrity check: without it (or with a count or
	// checksum mismatch) the stream was truncated or corrupted.
	if trailer == nil {
		log.Fatalf("stream ended after %d answers with no trailer: truncated", received)
	}
	if trailer.Count != received {
		log.Fatalf("trailer counts %d answers, received %d", trailer.Count, received)
	}
	if got := fmt.Sprintf("%016x", sum); got != trailer.Checksum {
		log.Fatalf("checksum %s, trailer carries %s", got, trailer.Checksum)
	}
	fmt.Printf("received %d answers in %d chunks; trailer count and checksum %s verify\n",
		received, chunks, trailer.Checksum)
}
