// Range analysis: a census bureau wants to support arbitrary range queries
// over an age × occupation histogram under (ε,δ)-differential privacy.
//
// This example designs a strategy for the full range-query workload,
// compares its expected error against the Haar wavelet strategy of Xiao et
// al. (the prior state of the art for ranges), and then runs one private
// release over a realistic skewed histogram, reporting observed relative
// error on a sample of ranges.
//
// Run with: go run ./examples/rangeanalysis
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"adaptivemm"
	"adaptivemm/internal/dataset"
)

func main() {
	// A census-like dataset (synthetic stand-in for IPUMS microdata),
	// marginalized onto age × occupation: 8 × 16 = 128 cells, 15M people.
	census, err := dataset.CensusLike().Project([]int{0, 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %s, %d cells, %.0f tuples\n",
		census.Name, census.Shape.Size(), census.Total)

	// The workload: every axis-aligned range over the 8x16 domain.
	w := adaptivemm.AllRange(8, 16)
	fmt.Printf("workload: %d range queries\n", w.NumQueries())

	p := adaptivemm.Privacy{Epsilon: 0.5, Delta: 1e-4}

	// Let the cost-based planner pick the strategy family; at 128 cells
	// it selects the exact Eigen-Design.
	s, err := adaptivemm.DesignAuto(w, adaptivemm.PlanHints{})
	if err != nil {
		log.Fatal(err)
	}
	if info, ok := s.PlanInfo(); ok {
		fmt.Printf("planner: %s via %s inference — %s\n", info.Generator, info.Inference, info.Note)
	}
	adaptive, err := s.Error(w, p)
	if err != nil {
		log.Fatal(err)
	}
	bound, err := adaptivemm.LowerBound(w, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("expected RMSE: adaptive %.1f (optimal ≥ %.1f, within %.1f%%)\n",
		adaptive, bound, 100*(adaptive/bound-1))

	// One private release: estimate the full histogram once, then answer
	// any range consistently from the estimate.
	r := rand.New(rand.NewSource(7))
	xhat, err := s.Estimate(census.X, p, r)
	if err != nil {
		log.Fatal(err)
	}

	// Evaluate observed relative error on a sample of ranges.
	sample := adaptivemm.RandomRange(500, r, 8, 16)
	rows := sample.Matrix()
	var relSum float64
	sanity := 0.001 * census.Total
	for i := 0; i < rows.Rows(); i++ {
		var truth, est float64
		for j, q := range rows.Row(i) {
			truth += q * census.X[j]
			est += q * xhat[j]
		}
		denom := math.Max(truth, sanity)
		relSum += math.Abs(est-truth) / denom
	}
	fmt.Printf("observed mean relative error over %d sampled ranges: %.6f\n",
		rows.Rows(), relSum/float64(rows.Rows()))

	// A few concrete queries an analyst might ask.
	fmt.Println("\nexample range queries (private vs true):")
	queries := []struct {
		label    string
		aLo, aHi int // age buckets
		oLo, oHi int // occupation buckets
	}{
		{"ages 0-1, all occupations", 0, 1, 0, 15},
		{"ages 2-5, occupations 0-3", 2, 5, 0, 3},
		{"all ages, occupation 7", 0, 7, 7, 7},
	}
	for _, q := range queries {
		var truth, est float64
		for a := q.aLo; a <= q.aHi; a++ {
			for o := q.oLo; o <= q.oHi; o++ {
				idx := a*16 + o
				truth += census.X[idx]
				est += xhat[idx]
			}
		}
		fmt.Printf("  %-28s %12.0f  (%.0f)\n", q.label, est, truth)
	}
}
