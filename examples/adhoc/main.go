// Ad hoc workloads: several analysts share one privacy budget, each with
// different queries. The paper's headline result (Sec 5.1, "Alternative
// Workloads") is that the Eigen-Design algorithm adapts to such arbitrary
// workload mixes where fixed strategies — each designed for one query
// class — lose badly.
//
// Analyst A wants range queries over a 16x8 domain, analyst B wants the
// 1-way marginals, analyst C has a handful of arbitrary predicates. We
// combine all queries into one workload, design one strategy, and compare
// against serving everyone with the wavelet or hierarchical strategy.
//
// Run with: go run ./examples/adhoc
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"adaptivemm"
)

func main() {
	r := rand.New(rand.NewSource(5))

	analystA := adaptivemm.RandomRange(60, r, 16, 8)
	analystB := adaptivemm.Marginals(1, 16, 8)
	analystC := adaptivemm.Predicate(20, r, 16, 8)
	combined := adaptivemm.Union("combined analyst workload", analystA, analystB, analystC)
	fmt.Printf("combined workload: %d queries over %d cells\n",
		combined.NumQueries(), combined.Cells())

	p := adaptivemm.Privacy{Epsilon: 0.5, Delta: 1e-4}

	// Arbitrary mixed workloads have no closed form or special structure:
	// the planner falls back to the exact Eigen-Design here.
	s, err := adaptivemm.DesignAuto(combined, adaptivemm.PlanHints{})
	if err != nil {
		log.Fatal(err)
	}
	if info, ok := s.PlanInfo(); ok {
		fmt.Printf("planner: %s (modeled cost %.3g)\n", info.Generator, info.ModeledCost)
	}
	adaptive, err := s.Error(combined, p)
	if err != nil {
		log.Fatal(err)
	}
	bound, err := adaptivemm.LowerBound(combined, p)
	if err != nil {
		log.Fatal(err)
	}

	// Fixed alternatives an uninitiated user might pick: answer everything
	// from noisy cell counts (identity), or use the range-query strategies.
	identity := identityRows(combined.Cells())
	idErr, err := adaptivemm.Error(combined, identity, p)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nexpected RMSE for the combined workload:\n")
	fmt.Printf("  identity strategy: %8.2f  (%.2fx bound)\n", idErr, idErr/bound)
	fmt.Printf("  eigen design:      %8.2f  (%.2fx bound)\n", adaptive, adaptive/bound)
	fmt.Printf("  lower bound:       %8.2f\n", bound)

	// Per-analyst benefit: answer each analyst's own queries from the one
	// shared release.
	x := syntheticHistogram(16*8, r)
	xhat, err := s.Estimate(x, p, r)
	if err != nil {
		log.Fatal(err)
	}
	for _, part := range []struct {
		name string
		w    *adaptivemm.Workload
	}{
		{"analyst A (ranges)", analystA},
		{"analyst B (marginals)", analystB},
		{"analyst C (predicates)", analystC},
	} {
		rows := part.w.Matrix()
		var rmse float64
		for i := 0; i < rows.Rows(); i++ {
			var truth, est float64
			for j, q := range rows.Row(i) {
				truth += q * x[j]
				est += q * xhat[j]
			}
			rmse += (est - truth) * (est - truth)
		}
		rmse = math.Sqrt(rmse / float64(rows.Rows()))
		fmt.Printf("  %-24s observed RMSE %.2f over %d queries\n",
			part.name, rmse, rows.Rows())
	}
}

func identityRows(n int) [][]float64 {
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, n)
		rows[i][i] = 1
	}
	return rows
}

func syntheticHistogram(n int, r *rand.Rand) []float64 {
	x := make([]float64, n)
	for i := range x {
		v := r.NormFloat64()
		x[i] = 1000 * v * v // skewed positive counts
	}
	return x
}
