// Quickstart: answer the paper's running example (Fig 1) under
// (ε,δ)-differential privacy with an adaptively designed strategy.
//
// A university wants to publish eight counting queries over students
// bucketed by gender × gpa range. Instead of adding noise to each query
// directly (high sensitivity → lots of noise), the Eigen-Design algorithm
// picks a better set of queries to ask privately and derives the workload
// answers from them.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"adaptivemm"
)

func main() {
	// The Fig 1 workload: 8 queries over 8 cells
	// (gender M/F × gpa buckets [1,2), [2,3), [3,3.5), [3.5,4]).
	queries := [][]float64{
		{1, 1, 1, 1, 1, 1, 1, 1},     // all students
		{1, 1, 1, 1, 0, 0, 0, 0},     // male students
		{0, 0, 0, 0, 1, 1, 1, 1},     // female students
		{1, 1, 0, 0, 1, 1, 0, 0},     // gpa < 3.0
		{0, 0, 1, 1, 0, 0, 1, 1},     // gpa >= 3.0
		{0, 0, 0, 0, 0, 0, 1, 1},     // female, gpa >= 3.5... (per Fig 1)
		{1, 1, 0, 0, 0, 0, 0, 0},     // male, gpa < 3.0
		{1, 1, 1, 1, -1, -1, -1, -1}, // male minus female
	}
	w := adaptivemm.FromRows("student queries", queries, 2, 4)

	// True cell counts (the private histogram).
	x := []float64{120, 80, 45, 30, 110, 95, 60, 25}

	p := adaptivemm.Privacy{Epsilon: 0.5, Delta: 1e-4}

	// Design a strategy adapted to this workload. Design routes through
	// the cost-based planner with the exact eigen generator pinned;
	// DesignAuto would let the planner choose the family itself.
	s, err := adaptivemm.Design(w)
	if err != nil {
		log.Fatal(err)
	}

	// How much error should we expect, before touching any data?
	adaptive, err := s.Error(w, p)
	if err != nil {
		log.Fatal(err)
	}
	naive, err := adaptivemm.Error(w, queries, p) // answer the workload directly
	if err != nil {
		log.Fatal(err)
	}
	bound, err := adaptivemm.LowerBound(w, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("expected RMSE  naive: %.2f   adaptive: %.2f   optimal ≥ %.2f\n",
		naive, adaptive, bound)

	// One differentially private release.
	r := rand.New(rand.NewSource(42))
	answers, err := s.Answer(w, x, p, r)
	if err != nil {
		log.Fatal(err)
	}

	labels := []string{
		"all students", "male students", "female students",
		"gpa < 3.0", "gpa >= 3.0", "female gpa >= 3.5",
		"male gpa < 3.0", "male - female",
	}
	fmt.Println("\nprivate answers (true value in parentheses):")
	for i, a := range answers {
		truth := 0.0
		for j, q := range queries[i] {
			truth += q * x[j]
		}
		fmt.Printf("  %-18s %8.1f  (%.0f)\n", labels[i], a, truth)
	}

	// Consistency comes free: q1 = q2 + q3 exactly, even under noise.
	fmt.Printf("\nconsistency check: all = male + female? %.6f = %.6f\n",
		answers[0], answers[1]+answers[2])
}
