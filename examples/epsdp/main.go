// Pure ε-differential privacy: the Sec 3.5 variant. When δ = 0 is
// required, the mechanism switches to Laplace noise calibrated to L1
// sensitivity, and the weighting program optimizes L1 column norms over a
// structured design basis (the paper recommends the wavelet for ranges,
// since the eigen-queries do not account for L1 sensitivity).
//
// This example designs an L1-weighted strategy for range queries, compares
// its expected error against the unweighted wavelet, and runs one Laplace
// release.
//
// Run with: go run ./examples/epsdp
package main

import (
	"fmt"
	"log"
	"math/rand"

	"adaptivemm"
)

func main() {
	const n = 64
	w := adaptivemm.AllRange(n)
	epsilon := 1.0

	// The wavelet strategy rows, used both as the unweighted baseline and
	// as the design basis for the L1 weighting.
	wavelet := haarRows(n)

	baseline, err := adaptivemm.FromRowsStrategy(wavelet)
	if err != nil {
		log.Fatal(err)
	}
	weighted, err := adaptivemm.DesignL1(w, wavelet)
	if err != nil {
		log.Fatal(err)
	}

	eBase, err := baseline.ErrorL1(w, epsilon)
	if err != nil {
		log.Fatal(err)
	}
	eWeighted, err := weighted.ErrorL1(w, epsilon)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ε-DP expected RMSE on all ranges [%d], ε=%g:\n", n, epsilon)
	fmt.Printf("  plain wavelet:        %.2f\n", eBase)
	fmt.Printf("  L1-weighted wavelet:  %.2f  (%.2fx better)\n", eWeighted, eBase/eWeighted)

	// One pure ε-DP release over a toy histogram.
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(100 + (i%7)*10)
	}
	r := rand.New(rand.NewSource(9))

	// Answer a handful of ranges from the private estimate.
	queries := adaptivemm.RandomRange(5, r, n)
	ans, err := weighted.AnswerLaplace(queries, x, epsilon, r)
	if err != nil {
		log.Fatal(err)
	}
	rows := queries.Matrix()
	fmt.Println("\nsample range queries (private vs true):")
	for i, a := range ans {
		var truth float64
		for j, q := range rows.Row(i) {
			truth += q * x[j]
		}
		fmt.Printf("  query %d: %10.1f  (%.0f)\n", i, a, truth)
	}
}

// haarRows builds the unnormalized Haar wavelet rows for n = 2^k cells.
func haarRows(n int) [][]float64 {
	var rows [][]float64
	total := make([]float64, n)
	for j := range total {
		total[j] = 1
	}
	rows = append(rows, total)
	for block := n; block >= 2; block /= 2 {
		for start := 0; start < n; start += block {
			row := make([]float64, n)
			half := block / 2
			for j := start; j < start+half; j++ {
				row[j] = 1
			}
			for j := start + half; j < start+block; j++ {
				row[j] = -1
			}
			rows = append(rows, row)
		}
	}
	return rows
}
