// Marginal release: publish all 1-way and 2-way marginals of a survey
// table under (ε,δ)-differential privacy, the contingency-table use case of
// Barak et al. and Ding et al. that the paper's Sec 5 evaluates.
//
// The adaptive strategy matches the optimal error for marginal workloads
// (the paper's Fig 3c), and the released marginals are mutually consistent
// because they all derive from one private histogram estimate.
//
// Run with: go run ./examples/marginalrelease
package main

import (
	"fmt"
	"log"
	"math/rand"

	"adaptivemm"
	"adaptivemm/internal/dataset"
)

func main() {
	// An Adult-like survey table (synthetic stand-in for the UCI dataset),
	// projected onto age × work class × income: 8 × 8 × 2 = 128 cells.
	adult, err := dataset.AdultLike().Project([]int{0, 1, 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %s, %d weighted tuples\n", adult.Name, int(adult.Total))

	// Workload: all 1-way and 2-way marginals.
	w := adaptivemm.Union("1- and 2-way marginals",
		adaptivemm.Marginals(1, 8, 8, 2),
		adaptivemm.Marginals(2, 8, 8, 2),
	)
	fmt.Printf("workload: %d marginal cells\n", w.NumQueries())

	p := adaptivemm.Privacy{Epsilon: 1.0, Delta: 1e-4}
	// The planner recognizes a union of marginal sets and selects the
	// closed-form marginal designer: provably optimal, no O(n³) work.
	s, err := adaptivemm.DesignAuto(w, adaptivemm.PlanHints{})
	if err != nil {
		log.Fatal(err)
	}
	if info, ok := s.PlanInfo(); ok {
		fmt.Printf("planner: %s — %s\n", info.Generator, info.Note)
	}
	expected, err := s.Error(w, p)
	if err != nil {
		log.Fatal(err)
	}
	bound, err := adaptivemm.LowerBound(w, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("expected RMSE per marginal cell: %.1f (optimal ≥ %.1f)\n", expected, bound)

	r := rand.New(rand.NewSource(11))
	answers, err := s.Answer(w, adult.X, p, r)
	if err != nil {
		log.Fatal(err)
	}

	// The first 8 answers are the age marginal; print it.
	fmt.Println("\nage marginal (private vs true):")
	for a := 0; a < 8; a++ {
		var truth float64
		for i, v := range adult.X {
			if i/(8*2) == a {
				truth += v
			}
		}
		fmt.Printf("  age bucket %d: %10.1f  (%.1f)\n", a, answers[a], truth)
	}

	// Consistency across marginals: the income marginal computed two ways
	// (directly, and by summing the age×income marginal over age) agrees
	// exactly — a property independent noise cannot provide.
	incomeDirect := answers[8+8] // after age(8) and work(8) marginals
	// age×income is the second 2-way marginal block: after 1-way (8+8+2)
	// and age×work (64): 16 cells of age×income.
	base := 8 + 8 + 2 + 64
	var incomeSummed float64
	for a := 0; a < 8; a++ {
		incomeSummed += answers[base+a*2] // income bucket 0 for each age
	}
	fmt.Printf("\nconsistency: income[0] direct %.4f vs summed over ages %.4f\n",
		incomeDirect, incomeSummed)
}
