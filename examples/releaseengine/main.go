// Release engine: the full multi-user serving flow against an in-process
// instance of the amserve HTTP service — the paper's deployment setting
// grown into a production shape.
//
// The walkthrough: design a strategy for all range queries (a second
// design of the same spec hits the strategy cache), register a dataset
// once with a privacy budget cap, answer a concurrent batch of releases
// through POST /release, and watch the accountant refuse the release that
// would exceed the cap — with the remaining budget in the refusal.
//
// Run with: go run ./examples/releaseengine
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"

	"adaptivemm/internal/server"
)

func call(ts *httptest.Server, method, path string, body any) (int, map[string]any) {
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			log.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, ts.URL+path, &buf)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatal(err)
	}
	return resp.StatusCode, out
}

func main() {
	ts := httptest.NewServer(server.New().Handler())
	defer ts.Close()

	// 1. Design a strategy for all range queries over 512 cells. The
	// workload has ~131k queries; design and inference stay matrix-free.
	_, design := call(ts, "POST", "/design", map[string]any{"workload": "allrange:512"})
	strategy := design["strategy"].(string)
	planner := design["planner"].(map[string]any)
	fmt.Printf("designed %v: %v queries, generator %v (modeled cost %v, inference %v)\n",
		strategy, design["queries"], planner["generator"], planner["modeledCost"], planner["inference"])

	// A repeated design of the same spec is served from the cache.
	_, again := call(ts, "POST", "/design", map[string]any{"workload": "allrange:512"})
	fmt.Printf("second design cached=%v, same id=%v\n", again["cached"], again["strategy"] == design["strategy"])

	// 2. Register the histogram once, with a total budget cap. Every
	// release below references it by name — no data in request bodies.
	hist := make([]float64, 512)
	for i := range hist {
		hist[i] = float64((i * 7) % 50)
	}
	call(ts, "POST", "/datasets", map[string]any{
		"name": "sensor-counts", "histogram": hist,
		"cap": map[string]any{"epsilon": 1.0, "delta": 1e-3},
	})

	// 3. A concurrent batch of releases, each a private estimate of the
	// histogram under its own (ε,δ). Unseeded → crypto-random noise.
	releases := make([]map[string]any, 8)
	for i := range releases {
		releases[i] = map[string]any{
			"strategy": strategy, "dataset": "sensor-counts",
			"epsilon": 0.1, "delta": 1e-5, "mode": "estimate",
		}
	}
	_, batch := call(ts, "POST", "/release", map[string]any{"releases": releases, "parallelism": 4})
	fmt.Printf("batch: %v succeeded, %v failed\n", batch["succeeded"], batch["failed"])

	// 4. The ledger now shows 8 × 0.1 committed; remaining ε is 0.2 …
	_, datasets := call(ts, "GET", "/datasets", nil)
	info := datasets["sensor-counts"].(map[string]any)
	fmt.Printf("spent: %v, remaining: %v\n", info["spent"], info["remaining"])

	// … so a release asking for ε=0.5 must be refused before any noise is
	// drawn, with the remaining budget in the body.
	code, refusal := call(ts, "POST", "/answer", map[string]any{
		"strategy": strategy, "dataset": "sensor-counts",
		"epsilon": 0.5, "delta": 1e-5, "mode": "estimate",
	})
	fmt.Printf("over-budget release → HTTP %d, remaining %v\n", code, refusal["remaining"])

	// A release that fits the remaining budget still goes through.
	code, _ = call(ts, "POST", "/answer", map[string]any{
		"strategy": strategy, "dataset": "sensor-counts",
		"epsilon": 0.2, "delta": 1e-5, "mode": "estimate",
	})
	fmt.Printf("exact-remaining release → HTTP %d\n", code)
}
