package adaptivemm

import (
	"math"
	"math/rand"
	"testing"
)

// Acceptance: AllRange(2048) — ~2.1M query rows, far past the old dense
// cap — is answered end-to-end via Strategy.Answer without materializing
// the workload matrix.
func TestAnswerAllRange2048MatrixFree(t *testing.T) {
	w := AllRange(2048)
	if w.NumQueries() != 2048*2049/2 {
		t.Fatalf("m = %d", w.NumQueries())
	}
	s, err := HierarchicalStrategy(2, 2048)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 2048)
	for i := range x {
		x[i] = float64(i % 17)
	}
	// Huge ε ⇒ negligible noise: answers must reproduce the exact query
	// values computed independently through the workload operator.
	p := Privacy{Epsilon: 1e9, Delta: 1e-4}
	r := rand.New(rand.NewSource(1))
	ans, err := s.Answer(w, x, p, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != w.NumQueries() {
		t.Fatalf("answers = %d, want %d", len(ans), w.NumQueries())
	}
	truth := w.MulQueries(x)
	var maxAbs float64
	for i := range truth {
		if d := math.Abs(ans[i] - truth[i]); d > maxAbs {
			maxAbs = d
		}
	}
	// Total over the domain is ~16k; answers should be essentially exact.
	if maxAbs > 1e-3 {
		t.Fatalf("max answer deviation %g at negligible noise", maxAbs)
	}
}

// Acceptance: the 2-D AllRange(64,64) workload (4096 cells, ~4.3M query
// rows) is designed with the factored principal-vector pipeline and
// estimated end-to-end via Strategy.Estimate, all matrix-free.
func TestEstimateAllRange64x64FactoredDesign(t *testing.T) {
	w := AllRange(64, 64)
	s, err := DesignPrincipal(w, 8)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, w.Cells())
	for i := range x {
		x[i] = float64((i*i + 3) % 23)
	}
	p := Privacy{Epsilon: 1e9, Delta: 1e-4}
	xhat, err := s.Estimate(x, p, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	var diff, norm float64
	for i := range x {
		d := xhat[i] - x[i]
		diff += d * d
		norm += x[i] * x[i]
	}
	if diff > 1e-12*norm {
		t.Fatalf("relative estimate error %g at negligible noise", diff/norm)
	}

	// A realistic budget must also work and stay finite.
	xhat, err = s.Estimate(x, Privacy{Epsilon: 0.5, Delta: 1e-4}, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range xhat {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite estimate at cell %d", i)
		}
	}
}

// The structured strategies answer arbitrary explicit workloads too — the
// consistency of least squares does not depend on the representation.
func TestHierarchicalStrategyAnswersPrefixWorkload(t *testing.T) {
	w := Prefix(512)
	s, err := HierarchicalStrategy(2, 512)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 512)
	for i := range x {
		x[i] = float64(i % 5)
	}
	p := Privacy{Epsilon: 1e9, Delta: 1e-4}
	ans, err := s.Answer(w, x, p, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	truth := w.MulQueries(x)
	for i := range truth {
		if math.Abs(ans[i]-truth[i]) > 1e-4 {
			t.Fatalf("prefix query %d: got %g want %g", i, ans[i], truth[i])
		}
	}
}
