// Package adaptivemm is a Go implementation of the adaptive matrix
// mechanism of Li & Miklau, "An Adaptive Mechanism for Accurate Query
// Answering under Differential Privacy" (VLDB 2012).
//
// Given a workload of linear counting queries over a histogram of cell
// counts, the Eigen-Design algorithm automatically selects a set of
// "strategy" queries to answer privately with the Gaussian mechanism under
// (ε,δ)-differential privacy; answers to the workload are then derived by
// least squares. The strategy adapts to the workload and typically incurs
// far less error than answering the workload directly — with no cost to
// the privacy guarantee.
//
// Typical use:
//
//	w := adaptivemm.AllRange(256)                     // the queries you care about
//	s, err := adaptivemm.Design(w)                    // adapt a strategy to them
//	p := adaptivemm.Privacy{Epsilon: 0.5, Delta: 1e-4}
//	answers, err := s.Answer(w, histogram, p, rng)    // one private release
//
// Analytic error and the Thm 2 lower bound are available without touching
// data via Error and LowerBound.
//
// # Scaling: matrix-free workloads and strategies
//
// Workloads and strategies are linear operators, not necessarily dense
// matrices. Structured builders (AllRange, Prefix, Marginals,
// RangeMarginals) return matrix-free representations — Kronecker products
// of per-dimension interval, identity and total operators — so even
// workloads whose explicit matrix would have billions of entries are fully
// answerable: AllRange(2048) has ~2.1M query rows and is answered in
// O(rows) per release without ever materializing them. There is no longer
// a hard cap on the domain sizes that can be *answered*; dense rows are
// only required by APIs that hand out explicit matrices.
//
// Strategies follow the same principle. Design on product-form workloads
// past ~1k cells keeps the eigen-structure in factored Kronecker form and
// returns a matrix-free strategy; HierarchicalStrategy and
// IdentityStrategy provide structured strategies at any scale with no
// optimization cost. The exact designs have hard admission caps (the
// dense pipeline at 4096 cells, the factored exact design at 8192 —
// past them the weighting program alone needs gigabytes) and Design
// returns an error instead of attempting the allocation; use
// DesignPrincipal or DesignAuto there, which scale to any product
// domain.
//
// # The strategy planner
//
// Every Design* entry point routes through one cost-based planner
// (shared with the amdesign CLI and the release-engine server). Design,
// DesignSeparated and DesignPrincipal pin their generator; DesignAuto
// lets the planner pick the family — the closed-form marginal designer
// for marginal sets, exact eigen design within the design budget, the
// factored principal-vector design for large product domains, or a
// structured fallback — honoring PlanHints (design-time budget,
// per-release latency target, shard cap). The plan also fixes the
// inference method explicitly: a one-time dense pseudo-inverse (small
// strategies, fastest per release), matrix-free CGLS (structured or
// large strategies, no O(n³) preprocessing), or normal-equations CG
// (very tall strategies). Strategy.PlanInfo reports the decision.
//
// # Sharded plans
//
// Workloads that decompose into independent blocks — a marginal set
// whose attribute subsets fall into ≥2 disjoint groups, or an explicit
// block-diagonal query matrix — are planned SHARDED by default: each
// block is planned independently (blocks may win different generators),
// and the per-block designs are stitched into one composite strategy
// that releases all blocks under a single privacy budget, with noise
// calibrated to the end-to-end sensitivity and per-shard inference run
// in parallel. This is how marginal workloads on domains far past the
// monolithic design caps (e.g. 1-way marginals over 64×64 = 4096 cells,
// or disjoint marginal groups over 10⁵+ cells) keep the closed-form
// optimal design per block instead of falling back to a tree strategy.
// PlanHints.MaxShards caps or disables the split; PlanInfo.Shards
// reports the per-shard outcomes.
package adaptivemm

import (
	"fmt"
	"math/rand"
	"time"

	"adaptivemm/internal/domain"
	"adaptivemm/internal/linalg"
	"adaptivemm/internal/mm"
	"adaptivemm/internal/planner"
	"adaptivemm/internal/strategy"
	"adaptivemm/internal/workload"
)

// Privacy bundles the differential-privacy parameters (ε, δ). δ > 0 is
// required for the Gaussian mechanism this package is built on.
type Privacy = mm.Privacy

// NoiseSource is the randomness a release draws its noise from. A
// deterministic *rand.Rand satisfies it for reproducible experiments;
// production releases should use NewCryptoNoiseSource, whose stream is
// unpredictable across processes and restarts — noise seeded from a
// counter or the clock is predictable and voids the privacy guarantee.
type NoiseSource = mm.NoiseSource

// NewCryptoNoiseSource returns a production noise source seeded from the
// operating system's CSPRNG.
func NewCryptoNoiseSource() NoiseSource { return mm.NewCryptoSeededSource() }

// Workload is a set of linear counting queries over a multi-dimensional
// histogram. Construct instances with the builders below.
type Workload = workload.Workload

// Strategy is a prepared strategy for the matrix mechanism: the strategy
// matrix together with the least-squares inference operator.
type Strategy struct {
	name string
	mech *mm.Mechanism
	// Eigenvalues of WᵀW when produced by Design; nil otherwise.
	eigenvalues []float64
	// plan is the planner artifact behind planner-built strategies; nil
	// for hand-built ones (FromRowsStrategy, DesignL1, ...).
	plan *planner.Plan
}

// Name returns a human-readable strategy label.
func (s *Strategy) Name() string { return s.name }

// Matrix returns the strategy's query matrix rows as a copy, materializing
// structured (operator) strategies when they fit the materialization cap.
// It returns an error for strategies too large to densify — matrix-free
// strategies from large domains would otherwise exhaust memory; use
// Estimate/Answer, which never materialize.
func (s *Strategy) Matrix() ([][]float64, error) {
	a, err := s.mech.StrategyDense()
	if err != nil {
		return nil, err
	}
	out := make([][]float64, a.Rows())
	for i := range out {
		out[i] = append([]float64(nil), a.Row(i)...)
	}
	return out, nil
}

// Answer performs one (ε,δ)-differentially private release: it answers the
// strategy queries on the histogram x with Gaussian noise and derives
// consistent answers to every query of w by least squares.
func (s *Strategy) Answer(w *Workload, x []float64, p Privacy, r NoiseSource) ([]float64, error) {
	return s.mech.AnswerGaussian(w, x, p, r)
}

// Estimate returns the differentially private estimate x̂ of the full
// histogram, from which callers can answer arbitrary linear queries
// consistently (all derived answers share the one privacy budget).
// Sharded strategies (see PlanInfo.Shards) never measure the joint
// histogram and return an error here; use Answer instead.
func (s *Strategy) Estimate(x []float64, p Privacy, r NoiseSource) ([]float64, error) {
	if err := s.requireJointEstimate(); err != nil {
		return nil, err
	}
	return s.mech.EstimateGaussian(x, p, r)
}

// requireJointEstimate refuses the full-histogram estimate entry points
// for sharded strategies: their private estimates live on per-shard
// sub-domains, and returning the concatenation where an n-cell histogram
// is promised would silently hand callers the wrong shape.
func (s *Strategy) requireJointEstimate() error {
	if s.mech.Shards() != nil {
		return fmt.Errorf("adaptivemm: strategy %q is sharded and has no single joint histogram estimate; use Answer, or design with PlanHints{MaxShards: -1} to force a monolithic plan", s.name)
	}
	return nil
}

// Error returns the analytic root-mean-square error of answering w with
// this strategy (Prop. 4 of the paper). It does not depend on the data.
func (s *Strategy) Error(w *Workload, p Privacy) (float64, error) {
	return mm.Error(w, s.mech.Strategy(), p)
}

// defaultPlanner is the process-wide strategy planner every Design*
// entry point routes through, so the library, the CLI tools and the
// release-engine server all make strategy decisions the same way. No
// plan cache: library workloads carry no canonical identity to key one
// on (the server derives keys from its workload specs and caches there).
var defaultPlanner = planner.New(planner.Config{})

// DesignOption customizes Design by adjusting the planner hints.
type DesignOption func(*planner.Hints)

// WithFirstOrderSolver forces the scalable first-order optimizer, useful
// for very large domains.
func WithFirstOrderSolver() DesignOption {
	return func(h *planner.Hints) { h.FirstOrder = true }
}

// PlanHints are the per-request hints DesignAuto passes to the cost-based
// strategy planner. The zero value asks for the default cost-based
// choice with the planner's default budgets.
type PlanHints struct {
	// MaxDesignTime bounds how long strategy design may take; generators
	// whose modeled cost exceeds it are skipped in favor of cheaper ones
	// (down to the free hierarchical and identity strategies). Zero
	// applies the planner's default budget (roughly: exact eigen design
	// is admitted up to ~512 cells).
	MaxDesignTime time.Duration
	// LatencyTarget is the per-release latency to aim for; a target
	// tighter than the modeled iterative-inference latency makes the plan
	// buy the one-time dense pseudo-inverse when the strategy fits it.
	// Zero leaves the inference choice to representation and size.
	LatencyTarget time.Duration
	// FirstOrder forces the first-order solver in the optimizing
	// generators. The zero value lets the planner pick per design size.
	FirstOrder bool
	// MaxShards bounds how many shards the sharded generator may split a
	// workload into: 0 applies the planner's default cap (16), values
	// ≥ 2 cap the count (the smallest blocks are merged to fit), and
	// negative values disable sharding entirely.
	MaxShards int
}

// ShardInfo describes one shard of a sharded (composite) plan.
type ShardInfo struct {
	// Kind is the split family: "marginal-block" (disjoint attribute
	// groups of a marginal set) or "cell-block" (disjoint cell groups of
	// an explicit query matrix).
	Kind string
	// Attrs lists the original attribute indices the shard owns
	// (marginal blocks only; nil for cell blocks).
	Attrs []int
	// Cells is the shard's sub-domain size in cells.
	Cells int
	// Queries is the shard's sub-workload query count.
	Queries int
	// Generator names the generator that won the shard's sub-plan.
	Generator string
	// Inference is the shard's inference method ("dense-pinv", "cgls",
	// "normal-cg").
	Inference string
	// ModeledCost is the shard sub-plan's modeled design cost in work
	// units.
	ModeledCost float64
}

// PlanInfo reports how the planner arrived at a strategy.
type PlanInfo struct {
	// Generator names the winning strategy generator.
	Generator string
	// Note is the planner's one-line rationale.
	Note string
	// Inference is the chosen inference method ("dense-pinv", "cgls",
	// "normal-cg", or "sharded" for composite plans that answer per
	// shard).
	Inference string
	// ModeledCost is the winner's modeled design cost in work units
	// (roughly floating-point operations).
	ModeledCost float64
	// DesignTime is the measured design time.
	DesignTime time.Duration
	// Shards lists the per-shard designs of a sharded plan, in shard
	// order; nil for monolithic plans.
	Shards []ShardInfo
}

// PlanInfo returns the planner's report for planner-built strategies
// (Design, DesignSeparated, DesignPrincipal, DesignAuto); ok is false for
// hand-built ones.
func (s *Strategy) PlanInfo() (PlanInfo, bool) {
	if s.plan == nil {
		return PlanInfo{}, false
	}
	var shards []ShardInfo
	for _, sh := range s.plan.Shards {
		shards = append(shards, ShardInfo{
			Kind:        sh.Kind,
			Attrs:       append([]int(nil), sh.Attrs...),
			Cells:       sh.Cells,
			Queries:     sh.Queries,
			Generator:   sh.Generator,
			Inference:   sh.Inference,
			ModeledCost: sh.ModeledCost,
		})
	}
	return PlanInfo{
		Generator:   s.plan.Generator,
		Note:        s.plan.Note,
		Inference:   s.plan.Inference.String(),
		ModeledCost: s.plan.ModeledCost,
		DesignTime:  s.plan.DesignTime,
		Shards:      shards,
	}, true
}

// DesignAuto lets the cost-based planner choose the strategy family for
// the workload — exact eigen design, one of its Sec 4.2 approximations,
// the closed-form marginal designer, or a structured fallback — honoring
// the hints. It is the recommended entry point when the workload shape is
// not known in advance.
func DesignAuto(w *Workload, hints PlanHints) (*Strategy, error) {
	plan, err := defaultPlanner.Plan(w, planner.Hints{
		MaxDesignTime: hints.MaxDesignTime,
		LatencyTarget: hints.LatencyTarget,
		FirstOrder:    hints.FirstOrder,
		MaxShards:     hints.MaxShards,
	})
	if err != nil {
		return nil, err
	}
	return strategyFromPlan("Planner("+plan.Generator+")", plan), nil
}

// designForced plans with a named generator and shared hint options.
func designForced(w *Workload, name, label string, h planner.Hints, opts []DesignOption) (*Strategy, error) {
	h.Generator = name
	for _, f := range opts {
		f(&h)
	}
	plan, err := defaultPlanner.Plan(w, h)
	if err != nil {
		return nil, err
	}
	return strategyFromPlan(label, plan), nil
}

// Design runs the Eigen-Design algorithm on the workload and returns the
// adapted strategy (Program 2 of the paper). Product-form workloads past
// the planner's structured threshold run the factored matrix-free
// pipeline automatically.
func Design(w *Workload, opts ...DesignOption) (*Strategy, error) {
	return designForced(w, "eigen", "EigenDesign", planner.Hints{}, opts)
}

// DesignSeparated runs the eigen-query separation optimization (Sec 4.2):
// near-optimal strategies at a fraction of the optimization cost. A group
// size near n^(1/3) balances the two optimization phases.
func DesignSeparated(w *Workload, groupSize int, opts ...DesignOption) (*Strategy, error) {
	if groupSize < 1 {
		return nil, fmt.Errorf("adaptivemm: group size %d < 1", groupSize)
	}
	return designForced(w, "eigen-separation", "EigenDesign(separated)", planner.Hints{GroupSize: groupSize}, opts)
}

// DesignPrincipal runs the principal-vector optimization (Sec 4.2): only
// the k most significant eigen-queries receive individual weights.
func DesignPrincipal(w *Workload, k int, opts ...DesignOption) (*Strategy, error) {
	if k < 1 {
		return nil, fmt.Errorf("adaptivemm: principal vector count %d < 1", k)
	}
	return designForced(w, "principal-vectors", "EigenDesign(principal)", planner.Hints{PrincipalK: k}, opts)
}

func strategyFromPlan(label string, plan *planner.Plan) *Strategy {
	return &Strategy{name: label, mech: plan.Mechanism, eigenvalues: plan.Eigenvalues, plan: plan}
}

// HierarchicalStrategy returns the b-ary hierarchical (tree) strategy of
// Hay et al. over the given dimensions as a matrix-free operator — a
// structured strategy with no optimization cost that scales to domains far
// past what Design can optimize, and is near-optimal for range workloads.
func HierarchicalStrategy(branch int, dims ...int) (*Strategy, error) {
	if branch < 2 {
		return nil, fmt.Errorf("adaptivemm: branching factor %d < 2", branch)
	}
	shape := domain.MustShape(dims...)
	op := strategy.HierarchicalOperator(shape, branch)
	return newStrategy("Hierarchical", op, nil)
}

// IdentityStrategy returns the identity strategy (noisy cell counts) as a
// matrix-free operator at any scale.
func IdentityStrategy(dims ...int) (*Strategy, error) {
	return newStrategy("Identity", strategy.IdentityOperator(domain.MustShape(dims...)), nil)
}

func newStrategy(name string, a linalg.Operator, eigenvalues []float64) (*Strategy, error) {
	mech, err := mm.NewMechanismOp(a)
	if err != nil {
		return nil, err
	}
	return &Strategy{name: name, mech: mech, eigenvalues: eigenvalues}, nil
}

// Error computes the analytic workload error of answering w with an
// arbitrary strategy matrix (rows of strategy queries).
func Error(w *Workload, strategyRows [][]float64, p Privacy) (float64, error) {
	return mm.Error(w, linalg.NewFromRows(strategyRows), p)
}

// LowerBound returns the singular-value lower bound (Thm 2): no strategy
// can answer w with less error under the (ε,δ)-matrix mechanism.
func LowerBound(w *Workload, p Privacy) (float64, error) {
	return mm.LowerBound(w, p)
}

// --- Workload builders ---

// FromRows builds a workload from explicit query rows over a histogram
// whose dimensions are dims (their product must equal the row length).
func FromRows(name string, rows [][]float64, dims ...int) *Workload {
	return workload.FromMatrix(name, domain.MustShape(dims...), linalg.NewFromRows(rows))
}

// IdentityWorkload returns the workload of all single-cell counts.
func IdentityWorkload(dims ...int) *Workload {
	return workload.Identity(domain.MustShape(dims...))
}

// AllRange returns the workload of all axis-aligned range queries over the
// given dimensions, as a matrix-free Kronecker operator: answerable at any
// scale (AllRange(2048) has ~2.1M rows and answers in O(rows) per
// release), with the Gram matrix available analytically for error
// analysis and Design.
func AllRange(dims ...int) *Workload {
	return workload.AllRange(domain.MustShape(dims...))
}

// RandomRange samples count random range queries.
func RandomRange(count int, r *rand.Rand, dims ...int) *Workload {
	return workload.RandomRange(domain.MustShape(dims...), count, r)
}

// Prefix returns the 1-D CDF (prefix-sum) workload on n cells.
func Prefix(n int) *Workload { return workload.Prefix(n) }

// Marginals returns all k-way marginals over the given dimensions.
func Marginals(k int, dims ...int) *Workload {
	return workload.Marginals(domain.MustShape(dims...), k)
}

// RangeMarginals returns all k-way range-marginal queries (ranges over the
// margin attributes), which answer aggregations on margins directly.
func RangeMarginals(k int, dims ...int) *Workload {
	return workload.RangeMarginals(domain.MustShape(dims...), k)
}

// Predicate samples count uniformly random 0/1 predicate queries.
func Predicate(count int, r *rand.Rand, dims ...int) *Workload {
	return workload.Predicate(domain.MustShape(dims...), count, r)
}

// Union combines several workloads over the same dimensions, e.g. the
// queries of multiple users sharing one privacy budget.
func Union(name string, ws ...*Workload) *Workload { return workload.Union(name, ws...) }
