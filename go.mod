module adaptivemm

go 1.24.0
